"""Determinism and golden-stats guarantees of the timing model.

The event-driven scheduler (DESIGN.md §3) is correctness-gated: for a
pinned configuration it must produce *bit-identical* statistics to the
original poll-everything scheduler.  The golden snapshots below were
captured from the pre-refactor reference implementation (seed commit)
and must never drift — any change to scheduling, wakeup, fast-forward or
predictor indexing that alters a single counter fails here.

Also covered: same-seed reproducibility, functional-trace prefix reuse,
the parallel sweep's equivalence to a sequential sweep, and the
code-generated predictor paths against their generic references.
"""

from __future__ import annotations

from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MechanismConfig
from repro.pipeline.simulator import Simulator
from repro.predictors.distance import DistancePredictor, DistancePredictorConfig


from helpers import stats_dict  # noqa: E402  (shared test helper)


# Captured from the pre-refactor (seed) scheduler: mcf, seed 1,
# warmup 1000 / measure 4000, CoreConfig defaults.
GOLDEN_MCF_BASELINE = {
    "cycles": 7818, "committed": 4002, "committed_producers": 3950,
    "committed_eligible": 3950, "zero_idiom_elim": 0, "move_elim": 0,
    "zero_pred": 0, "zero_pred_load": 0, "dist_pred": 0,
    "dist_pred_load": 0, "value_pred": 0, "value_pred_load": 0,
    "rsep_mispredicts": 0, "vp_mispredicts": 0, "zero_mispredicts": 0,
    "squashes_rsep": 0, "squashes_vp": 0, "squashes_zero": 0,
    "squashes_memory_order": 0, "squashed_ops": 0, "branches": 52,
    "branch_mispredicts": 0, "loads": 2201, "stores": 0,
    "load_forwards": 0, "stall_rob": 0, "stall_iq": 0, "stall_regs": 0,
    "stall_lsq": 7305,
    "intervals": 0, "warmed": 0, "sampled_window": 0, "ipc_ci": 0.0,
}

GOLDEN_MCF_RSEP_REALISTIC = {
    "cycles": 7818, "committed": 4002, "committed_producers": 3951,
    "committed_eligible": 3951, "zero_idiom_elim": 0, "move_elim": 0,
    "zero_pred": 0, "zero_pred_load": 0, "dist_pred": 10,
    "dist_pred_load": 10, "value_pred": 0, "value_pred_load": 0,
    "rsep_mispredicts": 0, "vp_mispredicts": 0, "zero_mispredicts": 0,
    "squashes_rsep": 0, "squashes_vp": 0, "squashes_zero": 0,
    "squashes_memory_order": 0, "squashed_ops": 0, "branches": 51,
    "branch_mispredicts": 0, "loads": 2202, "stores": 0,
    "load_forwards": 0, "stall_rob": 0, "stall_iq": 0, "stall_regs": 0,
    "stall_lsq": 7305,
    "intervals": 0, "warmed": 0, "sampled_window": 0, "ipc_ci": 0.0,
}

# Squash-exercising golden: libquantum, rsep+vpred, seed 1,
# warmup 0 / measure 8000 (covers distance/value coverage counters,
# an RSEP misprediction squash and zero-idiom elimination).
GOLDEN_LIBQUANTUM_RSEP_VP = {
    "cycles": 2933, "committed": 8000, "committed_producers": 7879,
    "committed_eligible": 7871, "zero_idiom_elim": 8, "move_elim": 0,
    "zero_pred": 0, "zero_pred_load": 0, "dist_pred": 559,
    "dist_pred_load": 161, "value_pred": 714, "value_pred_load": 131,
    "rsep_mispredicts": 1, "vp_mispredicts": 0, "zero_mispredicts": 0,
    "squashes_rsep": 1, "squashes_vp": 0, "squashes_zero": 0,
    "squashes_memory_order": 0, "squashed_ops": 168, "branches": 121,
    "branch_mispredicts": 0, "loads": 847, "stores": 0,
    "load_forwards": 0, "stall_rob": 231, "stall_iq": 1683,
    "stall_regs": 0, "stall_lsq": 0,
    "intervals": 0, "warmed": 0, "sampled_window": 0, "ipc_ci": 0.0,
}


class TestGoldenStats:
    def test_mcf_baseline_matches_pre_refactor_reference(self):
        result = Simulator().run_benchmark(
            "mcf", MechanismConfig.baseline(),
            warmup=1000, measure=4000, seed=1,
        )
        assert stats_dict(result.stats) == GOLDEN_MCF_BASELINE

    def test_mcf_rsep_realistic_matches_pre_refactor_reference(self):
        result = Simulator().run_benchmark(
            "mcf", MechanismConfig.rsep_realistic(),
            warmup=1000, measure=4000, seed=1,
        )
        assert stats_dict(result.stats) == GOLDEN_MCF_RSEP_REALISTIC

    def test_libquantum_rsep_vp_squash_path_matches_reference(self):
        result = Simulator().run_benchmark(
            "libquantum", MechanismConfig.rsep_plus_vp(),
            warmup=0, measure=8000, seed=1,
        )
        assert stats_dict(result.stats) == GOLDEN_LIBQUANTUM_RSEP_VP


class TestSameSeedDeterminism:
    def test_two_fresh_simulators_agree_exactly(self):
        results = [
            Simulator().run_benchmark(
                "xalancbmk", MechanismConfig.rsep_realistic(),
                warmup=500, measure=2000, seed=3,
            )
            for _ in range(2)
        ]
        assert stats_dict(results[0].stats) == stats_dict(results[1].stats)
        assert results[0].ipc == results[1].ipc

    def test_different_seeds_differ(self):
        stats = [
            stats_dict(
                Simulator().run_benchmark(
                    "gcc", MechanismConfig.baseline(),
                    warmup=500, measure=2000, seed=seed,
                ).stats
            )
            for seed in (1, 2)
        ]
        assert stats[0] != stats[1]


class TestTracePrefixReuse:
    def test_shorter_request_reuses_cached_trace(self):
        simulator = Simulator()
        long_trace = simulator.trace_for("mcf", 1, 4000)
        short_trace = simulator.trace_for("mcf", 1, 1500)
        assert short_trace is long_trace  # no re-execution

    def test_longer_request_rebuilds_and_covers(self):
        simulator = Simulator()
        short_trace = simulator.trace_for("mcf", 1, 1500)
        long_trace = simulator.trace_for("mcf", 1, 4000)
        assert long_trace is not short_trace
        assert len(long_trace) == 4000
        # The deterministic interpreter makes the short trace a prefix.
        for index in range(len(short_trace)):
            assert long_trace[index].result == short_trace[index].result
            assert long_trace[index].pc == short_trace[index].pc
        # And the longer trace now serves shorter requests.
        assert simulator.trace_for("mcf", 1, 2000) is long_trace

    def test_halted_trace_covers_any_request(self):
        simulator = Simulator()
        first = simulator.trace_for("mcf", 1, 500)
        if len(first) < 500:  # benchmark halted: complete execution
            assert simulator.trace_for("mcf", 1, 10_000) is first

    def test_prefix_reuse_preserves_pipeline_results(self):
        fresh = Simulator()
        reused = Simulator()
        reused.trace_for("mcf", 1, 30_000)  # longer than the run needs
        kwargs = dict(warmup=500, measure=2000, seed=1)
        a = fresh.run_benchmark("mcf", MechanismConfig.baseline(), **kwargs)
        b = reused.run_benchmark("mcf", MechanismConfig.baseline(), **kwargs)
        assert stats_dict(a.stats) == stats_dict(b.stats)


class TestParallelSweep:
    def test_parallel_matches_sequential(self):
        from repro.harness.sweep import SweepEngine

        mechanisms = [
            MechanismConfig.baseline(), MechanismConfig.rsep_realistic()
        ]
        kwargs = dict(
            benchmarks=["mcf", "dealII"], seeds=[1, 2],
            warmup=256, measure=1000,
        )
        # Private engines: the shared engine's memo would otherwise serve
        # the second runner without ever exercising the worker pool.
        sequential = ExperimentRunner(engine=SweepEngine(), **kwargs)
        sequential.run(mechanisms)
        parallel = ExperimentRunner(engine=SweepEngine(), **kwargs)
        parallel.run(mechanisms, workers=2)
        for benchmark in kwargs["benchmarks"]:
            for mechanism in mechanisms:
                left = sequential.outcome(benchmark, mechanism.name)
                right = parallel.outcome(benchmark, mechanism.name)
                assert left.ipc == right.ipc
                for a, b in zip(left.results, right.results):
                    assert (a.benchmark, a.mechanism, a.seed) == (
                        b.benchmark, b.mechanism, b.seed
                    )
                    assert stats_dict(a.stats) == stats_dict(b.stats)


class _LegacyValidationQueue:
    """The seed implementation: one linear scan over all pending µ-ops.

    Reimplemented verbatim (plus the ``next_ready_cycle`` accessor the
    idle fast-forward now uses) as the behavioural reference for the
    indexed queue: same request order, same eligibility predicate, same
    "break on first port failure" priority rule.
    """

    def __init__(self, mode) -> None:
        self.mode = mode
        self._pending: list = []
        self.issued = 0
        self.delayed_cycles = 0

    def __len__(self) -> int:
        return len(self._pending)

    def request(self, op) -> None:
        from repro.core.validation import ValidationMode

        if self.mode is ValidationMode.IDEAL:
            op.validation_done_cycle = op.complete_cycle
            return
        self._pending.append(op)

    def next_ready_cycle(self):
        times = [
            op.complete_cycle for op in self._pending
            if op.complete_cycle is not None
        ]
        return min(times) if times else None

    def issue_cycle(self, cycle, ports):
        from repro.core.validation import ValidationMode

        if self.mode is ValidationMode.IDEAL or not self._pending:
            return []
        lock = self.mode is ValidationMode.REISSUE_LOCK_FU
        issued = []
        for op in self._pending:
            if op.complete_cycle is None or op.complete_cycle > cycle:
                continue
            if not ports.try_issue_validation(op.d.fu, cycle, lock):
                break
            op.validation_done_cycle = cycle + 1
            self.delayed_cycles += cycle - op.complete_cycle
            issued.append(op)
        if issued:
            self.issued += len(issued)
            issued_ids = set(map(id, issued))
            self._pending = [
                op for op in self._pending if id(op) not in issued_ids
            ]
        return issued

    def squash(self, min_seq: int) -> None:
        self._pending = [op for op in self._pending if op.d.seq < min_seq]


class TestIndexedValidationQueue:
    """The cycle-indexed queue must be bit-identical to the linear scan."""

    #: (benchmark, window) cells chosen to exercise heavy validation
    #: traffic and — for hmmer/xalancbmk — RSEP-misprediction squashes
    #: that drain the queue mid-flight.
    CELLS = [
        ("hmmer", 500, 4000),
        ("dealII", 500, 4000),
        ("mcf", 500, 3000),
        ("xalancbmk", 256, 3000),
    ]

    def _variants(self):
        from repro.core.validation import ValidationMode

        yield MechanismConfig.rsep_validation(ValidationMode.IDEAL)
        yield MechanismConfig.rsep_validation(ValidationMode.REISSUE_LOCK_FU)
        yield MechanismConfig.rsep_validation(ValidationMode.REISSUE_ANY_FU)
        yield MechanismConfig.rsep_validation(
            ValidationMode.REISSUE_ANY_FU, sampling=True,
            start_train_threshold=15,
        )
        yield MechanismConfig.rsep_realistic()

    def test_all_modes_match_legacy_scan(self, monkeypatch):
        import repro.pipeline.core as core_module

        for mechanism in self._variants():
            for benchmark, warmup, measure in self.CELLS:
                kwargs = dict(warmup=warmup, measure=measure, seed=1)
                indexed = Simulator().run_benchmark(
                    benchmark, mechanism, **kwargs
                )
                with monkeypatch.context() as patch:
                    patch.setattr(
                        core_module, "ValidationQueue",
                        _LegacyValidationQueue,
                    )
                    legacy = Simulator().run_benchmark(
                        benchmark, mechanism, **kwargs
                    )
                assert stats_dict(indexed.stats) == stats_dict(
                    legacy.stats
                ), (mechanism.name, benchmark)

    def test_squash_drops_exactly_the_squashed_requests(self):
        from repro.backend.fu import IssuePorts, PortConfig
        from repro.core.validation import ValidationMode, ValidationQueue
        from repro.isa.opcodes import FuClass

        class _Dyn:
            def __init__(self, seq, fu=FuClass.INT_ALU):
                self.seq = seq
                self.fu = fu

        class _Op:
            def __init__(self, seq, complete_cycle):
                self.d = _Dyn(seq)
                self.complete_cycle = complete_cycle
                self.validation_done_cycle = None

        queue = ValidationQueue(ValidationMode.REISSUE_ANY_FU)
        ops = [_Op(seq, complete_cycle) for seq, complete_cycle in [
            (0, 5), (1, 5), (2, 9), (3, 7), (4, 9),
        ]]
        for op in ops:
            queue.request(op)
        assert len(queue) == 5
        assert queue.next_ready_cycle() == 5

        queue.squash(min_seq=3)  # drops seqs 3, 4 (one whole bucket stays)
        assert len(queue) == 3

        ports = IssuePorts(PortConfig())
        ports.new_cycle(6)
        issued = queue.issue_cycle(6, ports)
        assert [op.d.seq for op in issued] == [0, 1]
        assert all(op.validation_done_cycle == 7 for op in issued)
        assert len(queue) == 1  # seq 2 still waiting on cycle 9
        assert queue.next_ready_cycle() == 9
        ports.new_cycle(9)
        assert [op.d.seq for op in queue.issue_cycle(9, ports)] == [2]
        assert len(queue) == 0 and queue.next_ready_cycle() is None


class TestLazyHistorySnapshots:
    def test_raw_restore_equals_full_restore(self):
        """Fold recomputation from raw bits must equal the incremental
        fold state for every registered TAGE/distance geometry."""
        def build():
            history = GlobalHistory()
            path = PathHistory()
            DistancePredictor(
                DistancePredictorConfig.realistic(), history, path,
                XorShift64(3),
            )
            from repro.frontend.tage import TageBranchPredictor, TageConfig
            TageBranchPredictor(TageConfig(), history, path, XorShift64(4))
            return history

        incremental = build()
        recomputed = build()
        rng = XorShift64(17)
        for step in range(500):
            bit = rng.next_u64() & 1
            incremental.push(bit)
            recomputed.push(bit)
            if step % 23 == 5:
                # Round-trip through the raw checkpoint mid-stream...
                recomputed.restore_raw(recomputed.snapshot_raw())
                # ...and the full fold state must be unchanged.
                assert recomputed.snapshot() == incremental.snapshot()
        snapshot = incremental.snapshot()
        raw = incremental.snapshot_raw()
        for _ in range(50):
            incremental.push(rng.next_u64() & 1)
        incremental.restore_raw(raw)
        assert incremental.snapshot() == snapshot


class TestGeneratedPredictorPaths:
    """The code-generated fast paths must equal the generic references."""

    def test_fast_predict_matches_reference(self):
        def build(seed):
            history = GlobalHistory()
            path = PathHistory()
            predictor = DistancePredictor(
                DistancePredictorConfig.realistic(), history, path,
                XorShift64(seed),
            )
            return history, path, predictor

        h1, p1, fast = build(7)
        h2, p2, slow = build(7)
        rng = XorShift64(99)
        for step in range(400):
            pc = (rng.next_u64() & 0x3FFF) << 2
            a = fast.predict(pc)
            b = slow.predict_reference(pc)
            assert (a.distance, a.use_pred, a.likely_candidate,
                    a.provider, a.base_index) == (
                b.distance, b.use_pred, b.likely_candidate,
                b.provider, b.base_index)
            assert a.indices == b.indices
            assert a.tags == b.tags
            if step % 3 == 0:
                bit = rng.next_u64() & 1
                h1.push(bit)
                h2.push(bit)
            if step % 5 == 0:
                branch_pc = rng.next_u64() & 0xFFFF
                p1.push(branch_pc)
                p2.push(branch_pc)

    def test_dvtage_fast_predict_matches_reference(self):
        from repro.predictors.dvtage import DVtageConfig, DVtagePredictor

        def build(seed):
            history = GlobalHistory()
            path = PathHistory()
            predictor = DVtagePredictor(
                DVtageConfig(), history, path, XorShift64(seed)
            )
            return history, path, predictor

        h1, p1, fast = build(9)
        h2, p2, slow = build(9)
        rng = XorShift64(123)
        for step in range(400):
            pc = (rng.next_u64() & 0x3FFF) << 2
            a = fast.predict(pc)
            b = slow.predict_reference(pc)
            assert (a.value, a.use_pred, a.provider, a.base_index,
                    a.last_value_valid, a.inflight_rank) == (
                b.value, b.use_pred, b.provider, b.base_index,
                b.last_value_valid, b.inflight_rank)
            assert a.indices == b.indices
            assert a.tags == b.tags
            if step % 2 == 0:
                # Train so strides, confidences, tags and the in-flight
                # ranks all cycle through real transitions.
                actual = (rng.next_u64() & 0xFF) * (step % 7)
                fast.train(a, actual)
                slow.train(b, actual)
            if step % 3 == 0:
                bit = rng.next_u64() & 1
                h1.push(bit)
                h2.push(bit)
            if step % 5 == 0:
                branch_pc = rng.next_u64() & 0xFFFF
                p1.push(branch_pc)
                p2.push(branch_pc)

    @staticmethod
    def _seed_formula_lookup(indexer, pc):
        """The pre-refactor indexing formula, verbatim and memo-free.

        Computed from the public history/path state only, so it shares
        no code (or path-fold memo) with the generated fast path.
        """
        from repro.common.bitops import fold_bits

        word = pc >> 2
        path_bits = indexer._path_bits
        path_raw = indexer.path.raw(path_bits)
        indices, tags = [], []
        for number, geometry in enumerate(indexer.geometries, start=1):
            index_bits = geometry.log2_entries
            folded_index = indexer.history.folded(
                geometry.history_bits, index_bits
            )
            path_mix = fold_bits(path_raw, path_bits, index_bits)
            index = (
                word
                ^ (word >> (index_bits - number % index_bits or 1))
                ^ folded_index
                ^ path_mix
            ) & ((1 << index_bits) - 1)
            folded_tag = indexer.history.folded(
                geometry.history_bits, geometry.tag_bits
            )
            folded_tag2 = indexer.history.folded(
                geometry.history_bits, geometry.tag_bits - 1
            ) if geometry.tag_bits > 1 else 0
            tag = (word ^ folded_tag ^ (folded_tag2 << 1)) & (
                (1 << geometry.tag_bits) - 1
            )
            indices.append(index)
            tags.append(tag)
        return indices, tags

    def test_fast_indexer_lookup_matches_seed_formula(self):
        # predict_reference shares the generated fast_lookup (and the
        # generic lookup_reference shares its path memos), so the
        # indexer is checked against an independent re-derivation of
        # the original formula.
        history = GlobalHistory()
        path = PathHistory()
        predictor = DistancePredictor(
            DistancePredictorConfig.realistic(), history, path,
            XorShift64(11),
        )
        indexer = predictor._indexer
        rng = XorShift64(42)
        for step in range(300):
            pc = (rng.next_u64() & 0xFFFF) << 2
            fast = indexer.lookup(pc)            # code-generated
            generic = indexer.lookup_reference(pc)
            indices, tags = self._seed_formula_lookup(indexer, pc)
            assert fast.indices == generic.indices == indices
            assert fast.tags == generic.tags == tags
            if step % 2 == 0:
                history.push(rng.next_u64() & 1)
            if step % 7 == 0:
                path.push(rng.next_u64() & 0xFFFF)

    def test_commit_group_hashing_matches_fold_hash(self):
        """The inlined XOR-fold in observe_commit_group must keep producing
        exactly repro.common.bitops.fold_hash — checked through the pairing
        FIFO's public search interface."""
        from repro.common.bitops import fold_hash
        from repro.core.rsep import RsepConfig, RsepUnit

        history = GlobalHistory()
        path = PathHistory()
        unit = RsepUnit(RsepConfig.ideal(), history, path, XorShift64(3))

        class _FakeDyn:
            def __init__(self, result):
                self.result = result

        class _FakeOp:
            def __init__(self, result):
                self.d = _FakeDyn(result)
                self.dist_pred = None
                self.likely_candidate = False
                self.producer = None

        values = [0, 1, (1 << 64) - 1, 0x1234_5678_9ABC_DEF0,
                  0x7FF8_0000_0000_0000]
        unit.observe_commit_group([_FakeOp(value) for value in values])
        for position, value in enumerate(values):
            expected_hash = fold_hash(value, unit.config.hash_bits)
            distance = unit.pairing.find(expected_hash, unit.max_distance)
            # Each value was pushed at `position`; its most recent match
            # must sit exactly len(values) - position producers back.
            assert distance == len(values) - position

    def test_fast_history_push_matches_register_semantics(self):
        from repro.common.history import FoldedRegister

        history = GlobalHistory(capacity=64)
        history.register_fold(13, 7)
        history.register_fold(21, 9)
        mirror = {
            (13, 7): FoldedRegister(13, 7),
            (21, 9): FoldedRegister(21, 9),
        }
        raw = 0
        rng = XorShift64(5)
        for _ in range(300):
            bit = rng.next_u64() & 1
            for (history_bits, _), fold in mirror.items():
                outgoing = (raw >> (history_bits - 1)) & 1
                fold.push(bit, outgoing)
            raw = ((raw << 1) | bit) & ((1 << 64) - 1)
            history.push(bit)
        for key, fold in mirror.items():
            assert history.folded(*key) == fold.value
