"""Spec-level result lake: sound keys, robustness, plane equivalence.

DESIGN.md §14: per-cell ``Stats`` artifacts live in the trace store,
content-addressed on the complete cell fingerprint.  These tests pin the
three contracts the ISSUE demands: corrupt/truncated/foreign/tampered
entries are misses that get overwritten, a lake-served cell is
digest-identical to a fresh simulation on every compute-plane
combination, and the gate (off by default) keeps today's behaviour
bit-identical.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.api.session import Session
from repro.api.spec import ExperimentSpec, StoreSpec, WindowSpec
from repro.harness.sweep import SweepEngine
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.simulator import Simulator
from repro.workloads import store as store_module
from repro.workloads.store import CELL_FORMAT, TraceStore, cell_stats_digest

from helpers import stats_dict  # noqa: E402  (shared test helper)

KWARGS = dict(seed=1, warmup=256, measure=1000)


def _engine(root, **extra) -> SweepEngine:
    return SweepEngine(
        simulator=Simulator(trace_store=TraceStore(root)),
        result_lake=True,
        **extra,
    )


def _cell_files(root) -> list[Path]:
    return sorted(Path(root).glob("*.cell"))


class TestLakeRoundTrip:
    def test_fresh_process_serves_from_lake(self, tmp_path):
        cold = _engine(tmp_path)
        baseline = cold.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        assert cold.cell_misses == 1
        assert cold.lake_misses == 1 and cold.lake_writes == 1
        assert len(_cell_files(tmp_path)) == 1

        warm = _engine(tmp_path)  # a fresh engine = a fresh process's view
        served = warm.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        assert warm.cell_misses == 0  # zero simulations
        assert warm.lake_hits == 1
        assert stats_dict(served.stats) == stats_dict(baseline.stats)

    def test_memo_takes_precedence_over_lake(self, tmp_path):
        engine = _engine(tmp_path)
        engine.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        engine.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        assert engine.cell_hits == 1  # memo, not a second lake read
        assert engine.lake_hits == 0
        assert engine.simulator.trace_store.cell_hits == 0

    def test_lake_off_is_todays_behaviour(self, tmp_path):
        # Default-off: same store, no .cell artifact, stats identical.
        gated = SweepEngine(simulator=Simulator(trace_store=TraceStore(
            tmp_path / "gated"
        )))
        plain = gated.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        assert not _cell_files(tmp_path / "gated")
        laked = _engine(tmp_path / "laked").run_cell(
            "mcf", MechanismConfig.baseline(), **KWARGS
        )
        assert stats_dict(plain.stats) == stats_dict(laked.stats)

    def test_env_gates_when_unpinned(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_LAKE", "1")
        engine = SweepEngine(
            simulator=Simulator(trace_store=TraceStore(tmp_path))
        )
        assert engine.result_lake is None and engine.lake_enabled()
        engine.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        assert len(_cell_files(tmp_path)) == 1
        monkeypatch.setenv("REPRO_RESULT_LAKE", "0")
        assert not engine.lake_enabled()

    def test_no_store_means_no_lake(self):
        engine = SweepEngine(
            simulator=Simulator(trace_store=None), result_lake=True
        )
        assert not engine.lake_enabled()
        engine.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        assert engine.lake_hits == engine.lake_misses == 0


class TestKeySoundness:
    def test_core_config_is_part_of_the_lake_key(self, tmp_path):
        # The regression the ISSUE names: two cores must never share a
        # lake cell.  Same benchmark/seed/window/mechanism, different
        # core -> different artifact, different stats.
        default = _engine(tmp_path)
        default.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        small = default.variant(CoreConfig(rob_entries=16))
        small.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        assert len(_cell_files(tmp_path)) == 2

        warm = _engine(tmp_path)
        a = warm.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        b = warm.variant(CoreConfig(rob_entries=16)).run_cell(
            "mcf", MechanismConfig.baseline(), **KWARGS
        )
        assert warm.cell_misses == 0  # both served, each from its own cell
        assert stats_dict(a.stats) != stats_dict(b.stats)

    def test_window_seed_mechanism_split_cells(self, tmp_path):
        engine = _engine(tmp_path)
        engine.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        engine.run_cell("mcf", MechanismConfig.baseline(),
                        seed=2, warmup=256, measure=1000)
        engine.run_cell("mcf", MechanismConfig.baseline(),
                        seed=1, warmup=256, measure=1500)
        engine.run_cell("mcf", MechanismConfig.move_elimination(), **KWARGS)
        assert len(_cell_files(tmp_path)) == 4

    def test_mechanism_display_name_is_not(self, tmp_path):
        engine = _engine(tmp_path)
        engine.run_cell("mcf", MechanismConfig.rsep_ideal(), **KWARGS)
        renamed = dataclasses.replace(
            MechanismConfig.rsep_ideal(), name="rsep-again"
        )
        warm = _engine(tmp_path)
        result = warm.run_cell("mcf", renamed, **KWARGS)
        assert warm.cell_misses == 0 and warm.lake_hits == 1
        assert result.mechanism == "rsep-again"


class TestLakeRobustness:
    """Anything unreadable is a miss that re-simulation overwrites."""

    def _seed_one_cell(self, root) -> Path:
        engine = _engine(root)
        engine.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        (path,) = _cell_files(root)
        return path

    def _assert_recovers(self, root, reference=None):
        engine = _engine(root)
        result = engine.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        store = engine.simulator.trace_store
        assert engine.lake_hits == 0 and engine.cell_misses == 1
        assert store.cell_recovered == 1
        if reference is not None:
            assert stats_dict(result.stats) == stats_dict(reference)
        # The bad artifact was overwritten: the next engine hits.
        after = _engine(root)
        after.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        assert after.lake_hits == 1 and after.cell_misses == 0

    def test_corrupt_entry_is_a_miss_and_overwritten(self, tmp_path):
        path = self._seed_one_cell(tmp_path)
        reference = json.loads(path.read_text())["stats"]
        path.write_text("{not json at all", encoding="utf-8")
        self._assert_recovers(tmp_path)
        assert json.loads(path.read_text())["stats"] == reference

    def test_truncated_entry_is_a_miss(self, tmp_path):
        path = self._seed_one_cell(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        self._assert_recovers(tmp_path)

    def test_foreign_format_is_a_miss(self, tmp_path):
        path = self._seed_one_cell(tmp_path)
        payload = json.loads(path.read_text())
        payload["format"] = CELL_FORMAT + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        self._assert_recovers(tmp_path)

    def test_tampered_stats_are_a_miss(self, tmp_path):
        path = self._seed_one_cell(tmp_path)
        payload = json.loads(path.read_text())
        reference = dict(payload["stats"])
        payload["stats"]["cycles"] = payload["stats"]["cycles"] + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        # Edited counters under a stale digest must never be served.
        self._assert_recovers(tmp_path)
        assert json.loads(path.read_text())["stats"] == reference

    def test_schema_drift_is_a_miss(self, tmp_path):
        path = self._seed_one_cell(tmp_path)
        payload = json.loads(path.read_text())
        payload["stats"]["counter_from_the_future"] = 7
        payload["digest"] = cell_stats_digest(payload["stats"])
        path.write_text(json.dumps(payload), encoding="utf-8")
        self._assert_recovers(tmp_path)

    def test_workload_version_splits_cells(self, tmp_path, monkeypatch):
        self._seed_one_cell(tmp_path)
        monkeypatch.setattr(
            store_module.__name__ + ".workload_code_version",
            lambda: "0" * 16,
        )
        import repro.harness.sweep as sweep_module

        monkeypatch.setattr(
            sweep_module, "workload_code_version", lambda: "0" * 16
        )
        warm = _engine(tmp_path)
        warm.run_cell("mcf", MechanismConfig.baseline(), **KWARGS)
        # A code edit means a different token: miss, new artifact.
        assert warm.lake_hits == 0 and warm.cell_misses == 1
        assert len(_cell_files(tmp_path)) == 2


class TestPlaneEquivalence:
    def test_lake_served_cell_identical_on_all_four_planes(
        self, tmp_path, monkeypatch
    ):
        """A cell laked under the default planes serves bit-identically
        on every REPRO_GENRENAME × REPRO_VECWARM combination (the plane
        flags never join the key: planes are bit-identical by the
        equivalence suite, and this pins that the lake agrees)."""
        from repro.sampling import SamplingConfig

        sampling = SamplingConfig(
            enabled=True, interval=500, detail_ratio=0.5, detail_warmup=64
        )
        kwargs = dict(seed=1, warmup=256, measure=1000, sampling=sampling)
        cold = _engine(tmp_path)
        reference = cold.run_cell(
            "mcf", MechanismConfig.rsep_realistic(), **kwargs
        )
        for genrename in ("1", "0"):
            for vecwarm in ("1", "0"):
                monkeypatch.setenv("REPRO_GENRENAME", genrename)
                monkeypatch.setenv("REPRO_VECWARM", vecwarm)
                warm = _engine(tmp_path)
                served = warm.run_cell(
                    "mcf", MechanismConfig.rsep_realistic(), **kwargs
                )
                assert warm.cell_misses == 0, (genrename, vecwarm)
                fresh = SweepEngine(
                    simulator=Simulator(trace_store=None)
                ).run_cell("mcf", MechanismConfig.rsep_realistic(), **kwargs)
                assert stats_dict(served.stats) == stats_dict(fresh.stats)
                assert stats_dict(served.stats) == stats_dict(
                    reference.stats
                )


class TestParallelAndSharded:
    def test_parallel_sweep_populates_and_serves_the_lake(self, tmp_path):
        mechanisms = [
            MechanismConfig.baseline(), MechanismConfig.rsep_realistic()
        ]
        kwargs = dict(seeds=[1], warmup=256, measure=1000)
        cold = _engine(tmp_path)
        first = cold.sweep(["mcf", "dealII"], mechanisms, workers=2, **kwargs)
        assert cold.cell_misses == 4 and cold.lake_hits == 0
        assert len(_cell_files(tmp_path)) == 4

        warm = _engine(tmp_path)
        second = warm.sweep(["mcf", "dealII"], mechanisms, workers=2, **kwargs)
        assert warm.cell_misses == 0  # zero simulations on the warm lake
        assert warm.lake_hits == 4
        for key in first:
            for a, b in zip(first[key], second[key]):
                assert stats_dict(a.stats) == stats_dict(b.stats)

    def test_sharded_service_populates_the_shared_lake(self, tmp_path):
        spec = ExperimentSpec(
            benchmarks=("mcf", "dealII"),
            mechanisms=(MechanismConfig.baseline(),),
            seeds=(1,),
            window=WindowSpec(warmup=256, measure=1000),
            store=StoreSpec(path=str(tmp_path), result_lake=True),
            shards=2,
        )
        session = Session(store=spec.store)
        outcome = session.run_sharded(spec)
        assert not outcome.holes
        assert len(_cell_files(tmp_path)) == 2  # shards wrote the lake

        warm = Session(store=spec.store)
        result = warm.run(spec)
        assert warm.engine.cell_misses == 0
        assert warm.engine.lake_hits == 2
        assert result.digest() == outcome.result.digest()


class TestFrontDoor:
    def test_session_round_trip_is_digest_identical(self, tmp_path):
        spec = ExperimentSpec(
            benchmarks=("mcf",),
            window=WindowSpec(warmup=256, measure=1000),
            store=StoreSpec(path=str(tmp_path), result_lake=True),
        )
        cold = Session(store=spec.store).run(spec)
        warm_session = Session(store=spec.store)
        warm = warm_session.run(spec)
        assert warm_session.engine.cell_misses == 0
        assert warm.digest() == cold.digest()

    def test_store_spec_reads_env_and_round_trips(self, monkeypatch):
        assert StoreSpec.from_env().result_lake is False
        monkeypatch.setenv("REPRO_RESULT_LAKE", "1")
        assert StoreSpec.from_env().result_lake is True
        spec = ExperimentSpec(
            benchmarks=("mcf",),
            store=StoreSpec(result_lake=True),
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        # The lake never changes stats, so it never joins the
        # fingerprint.
        plain = dataclasses.replace(spec, store=StoreSpec())
        assert spec.fingerprint() == plain.fingerprint()

    def test_session_pins_the_spec_store_over_env(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_LAKE", "1")
        session = Session(store=StoreSpec(path=str(tmp_path)))
        assert session.engine.result_lake is False
        assert not session.engine.lake_enabled()


class TestVersionSnapshot:
    def test_snapshot_signature_always_describes_the_bytes(self, tmp_path):
        """An edit racing the stat/read passes can no longer memoise a
        signature from one version with bytes from another."""
        target = tmp_path / "module.py"
        target.write_text("ORIGINAL = 1\n")

        class RacingPath(type(Path())):
            """Reads the old bytes, then lets an 'edit' land before the
            consistency re-stat — forcing the retry loop."""

            raced = False

            def read_bytes(self):
                data = super().read_bytes()
                if not RacingPath.raced:
                    RacingPath.raced = True
                    Path(str(self)).write_text("EDITED = 2\n" * 100)
                return data

        signature, data = store_module._snapshot_source(RacingPath(target))
        stat = target.stat()
        assert signature == (str(target), stat.st_mtime_ns, stat.st_size)
        assert data == target.read_bytes()  # the post-edit bytes

    def test_version_memo_invalidates_on_edit(self, tmp_path, monkeypatch):
        source = tmp_path / "workload.py"
        source.write_text("A = 1\n")
        monkeypatch.setattr(
            store_module, "_module_sources", lambda: [source]
        )
        monkeypatch.setattr(store_module, "_version_cache", None)
        first = store_module.workload_code_version()
        assert store_module.workload_code_version() == first  # memo hit
        source.write_text("A = 2\n")
        assert store_module.workload_code_version() != first
