"""Behavioural tests for the workload kernels and builder internals.

Each kernel advertises a value behaviour (RSEP-capturable, VP-capturable,
zero-producing, …); these tests verify the advertised property holds in
the generated trace, independent of any timing model.
"""

import pytest

from repro.common.rng import XorShift64
from repro.isa.program import ProgramError
from repro.workloads import kernels as K
from repro.workloads.builder import (
    DATA_BASE,
    DataSegment,
    ProgramBuilder,
    RegAllocator,
)
from repro.workloads.trace import Machine, execute


def run_kernels(kernel_factories, instructions=12000, seed=42):
    builder = ProgramBuilder("kernel-test")
    rng = XorShift64(seed)
    kernels = [factory(builder, rng) for factory in kernel_factories]
    entry = builder.fresh_label("main")
    builder.b(entry)
    for kernel in kernels:
        if kernel.functions is not None:
            kernel.functions()
    builder.label(entry)
    for kernel in kernels:
        kernel.setup()
    loop = builder.label(builder.fresh_label("outer"))
    for kernel in kernels:
        kernel.body()
    builder.b(loop)
    builder.halt()
    return execute(
        builder.build(), instructions, Machine(dict(builder.data.image))
    )


def stable_distance_fraction(trace, pc):
    """Fraction of dynamic instances of *pc* whose result equals the
    result of a producer at one single dominant back-distance."""
    producers = [d for d in trace if d.produces_result()]
    positions = {}
    distances = []
    for index, d in enumerate(producers):
        if d.pc == pc and d.result in positions:
            distances.append(index - positions[d.result])
        positions.setdefault(d.result, index)
        positions[d.result] = index
    if not distances:
        return 0.0
    dominant = max(set(distances), key=distances.count)
    return distances.count(dominant) / len(distances)


class TestRegAllocator:
    def test_exhaustion(self):
        allocator = RegAllocator()
        allocator.int_regs(30)
        with pytest.raises(ProgramError):
            allocator.int_reg()

    def test_fp_pool(self):
        allocator = RegAllocator()
        regs = allocator.fp_regs(32)
        assert len(set(regs)) == 32
        with pytest.raises(ProgramError):
            allocator.fp_reg()


class TestDataSegment:
    def test_bump_allocation_aligned(self):
        segment = DataSegment()
        a = segment.alloc(10, align=8)
        b = segment.alloc(8, align=8)
        assert a >= DATA_BASE and a % 8 == 0
        assert b >= a + 10

    def test_words_and_bytes(self):
        segment = DataSegment()
        base = segment.alloc_words([1, 2, 3])
        assert segment.image[base >> 3] == 1
        assert segment.image[(base >> 3) + 2] == 3
        buf = segment.alloc_bytes(b"\x11\x22")
        assert segment.image[buf >> 3] & 0xFFFF == 0x2211

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DataSegment().alloc(0)


class TestRingChase:
    def test_chase_values_periodic_and_stable(self):
        trace = run_kernels(
            [lambda b, r: K.ring_chase(b, r, ring_nodes=8, reps=16,
                                       payload=False)]
        )
        chase_pcs = {
            d.pc for d in trace
            if d.is_load and d.produces_result()
        }
        assert chase_pcs
        # Every chase load PC has a dominant stable pair distance.
        stable = [
            stable_distance_fraction(trace, pc) for pc in list(chase_pcs)[:4]
        ]
        assert all(fraction > 0.9 for fraction in stable)

    def test_branch_arm_keeps_producers_stable(self):
        trace = run_kernels(
            [lambda b, r: K.ring_chase(b, r, ring_nodes=6, reps=6,
                                       payload_branch=True)]
        )
        # Producer count between consecutive outer-loop back-edges must be
        # constant despite the data-dependent branches.
        counts = []
        producers = 0
        for d in trace:
            if d.is_branch and d.taken and d.target_pc < d.pc:
                counts.append(producers)
                producers = 0
            elif d.produces_result():
                producers += 1
        assert len(set(counts[2:-1])) == 1


class TestXorRing:
    def test_period_two_values(self):
        trace = run_kernels(
            [lambda b, r: K.xor_ring(b, r, chain=6, period_two=True)]
        )
        by_pc = {}
        for d in trace:
            if d.produces_result() and d.opcode.name == "EORI":
                by_pc.setdefault(d.pc, []).append(d.result)
        assert by_pc
        for values in by_pc.values():
            # Alternating A,B,A,B...
            assert len(set(values)) == 2
            assert values[0] == values[2] and values[1] == values[3]

    def test_period_one_when_constants_cancel(self):
        trace = run_kernels(
            [lambda b, r: K.xor_ring(b, r, chain=5, period_two=False)]
        )
        by_pc = {}
        for d in trace:
            if d.produces_result() and d.opcode.name == "EORI":
                by_pc.setdefault(d.pc, []).append(d.result)
        for values in by_pc.values():
            assert len(set(values)) == 1

    def test_with_move_inserts_move(self):
        trace = run_kernels(
            [lambda b, r: K.xor_ring(b, r, chain=5, with_move=True)]
        )
        assert any(d.move for d in trace)


class TestStrideChain:
    def test_values_strided_never_repeat(self):
        trace = run_kernels([lambda b, r: K.stride_chain(b, r, chain=6)],
                            instructions=4000)
        by_pc = {}
        for d in trace:
            if d.produces_result() and d.opcode.name == "ADDI":
                by_pc.setdefault(d.pc, []).append(d.result)
        chain_pcs = [pc for pc, vals in by_pc.items() if len(vals) > 10]
        assert chain_pcs
        for pc in chain_pcs:
            values = by_pc[pc]
            strides = {
                (b - a) & ((1 << 64) - 1) for a, b in zip(values, values[1:])
            }
            assert len(strides) == 1          # perfectly strided
            assert len(set(values)) == len(values)  # never equal


class TestConstChain:
    def test_constant_loads(self):
        trace = run_kernels([lambda b, r: K.const_chain(b, r, links=4)],
                            instructions=4000)
        by_pc = {}
        for d in trace:
            if d.is_load and d.produces_result():
                by_pc.setdefault(d.pc, set()).add(d.result)
        assert by_pc
        assert all(len(values) == 1 for values in by_pc.values())
        assert all(0 not in values for values in by_pc.values())

    def test_zero_fields_variant_loads_zero(self):
        trace = run_kernels(
            [lambda b, r: K.const_chain(b, r, links=3, zero_fields=True)],
            instructions=4000,
        )
        loads = [d for d in trace if d.is_load and d.produces_result()]
        assert loads
        assert all(d.result == 0 for d in loads)
        assert not any(d.zero_idiom for d in loads)


class TestZeroLoads:
    def test_density_in_ballpark(self):
        trace = run_kernels(
            [lambda b, r: K.zero_loads(b, r, zero_density=0.4, zero_run=8)],
            instructions=10000,
        )
        loads = [d for d in trace if d.is_load]
        zero_fraction = sum(d.result == 0 for d in loads) / len(loads)
        assert 0.15 < zero_fraction < 0.65

    def test_no_decode_visible_idioms_in_loop_body(self):
        trace = run_kernels(
            [lambda b, r: K.zero_loads(b, r, zero_density=0.5)],
            instructions=4000,
        )
        # Setup code may contain movz #0 idioms; the steady-state loop
        # zeros (loads and masked extractions) must not be idioms.
        steady = trace.instructions[200:]
        zero_results = [
            d for d in steady if d.produces_result() and d.result == 0
        ]
        assert zero_results
        assert not any(d.zero_idiom for d in zero_results)


class TestStackSpill:
    def test_reload_equals_spilled_value(self):
        trace = run_kernels(
            [lambda b, r: K.stack_spill(b, r, reps=2, spacing=4)],
            instructions=4000,
        )
        stores = {d.seq: d for d in trace if d.is_store}
        reload_matches = 0
        reload_total = 0
        store_values = {}
        for d in trace:
            if d.is_store:
                store_values[d.addr] = d.seq
            elif d.is_load and d.addr in store_values:
                reload_total += 1
        assert reload_total > 10


class TestLateProducerPair:
    def test_mirror_equals_big_array(self):
        trace = run_kernels(
            [lambda b, r: K.late_producer_pair(b, r, reps=2, spacing=3)],
            instructions=6000,
        )
        loads = [d for d in trace if d.is_load]
        # Consecutive load pairs carry equal values by construction.
        equal_pairs = sum(
            1 for a, b in zip(loads, loads[1:])
            if a.result == b.result and a.addr != b.addr
        )
        assert equal_pairs > len(loads) // 4


class TestFpStencil:
    def test_store_is_scaled_sum(self):
        from repro.workloads.trace import bits_to_float

        trace = run_kernels(
            [lambda b, r: K.fp_stencil(b, r, elements=256, reps=1)],
            instructions=3000,
        )
        loads = [d for d in trace if d.is_load]
        stores = [d for d in trace if d.is_store]
        assert loads and stores

    def test_serial_acc_emits_recurrence(self):
        trace = run_kernels(
            [lambda b, r: K.fp_stencil(b, r, elements=256, reps=1,
                                       serial_acc=True, acc_steps=2)],
            instructions=2000,
        )
        fadds = [d for d in trace if d.opcode.name == "FADD"]
        assert len(fadds) >= 3 * len(
            [d for d in trace if d.is_store]
        )  # 1 sum + 2 acc per element


class TestMixedChain:
    def test_stride_and_spill_interleaved(self):
        trace = run_kernels(
            [lambda b, r: K.mixed_chain(b, r, stride_links=8, spills=2,
                                        segment=4)],
            instructions=4000,
        )
        assert any(d.is_store for d in trace)
        assert any(d.is_load for d in trace)
        addis = [d for d in trace if d.opcode.name == "ADDI"]
        assert addis


class TestCallRet:
    def test_calls_return_correctly(self):
        trace = run_kernels(
            [lambda b, r: K.call_ret(b, r, reps=1, functions=3)],
            instructions=3000,
        )
        calls = [d for d in trace if d.is_call]
        returns = [d for d in trace if d.is_return]
        assert len(calls) > 10
        assert abs(len(calls) - len(returns)) <= 1
        # Every return targets the instruction after some call.
        call_returns = {d.pc + 4 for d in calls}
        assert all(d.target_pc in call_returns for d in returns)


class TestBranchy:
    def test_random_branch_outcomes_mixed(self):
        trace = run_kernels(
            [lambda b, r: K.branchy(b, r, reps=2, random_branches=2,
                                    pattern_branches=0)],
            instructions=6000,
        )
        conditional = [d for d in trace if d.is_conditional]
        taken_fraction = sum(d.taken for d in conditional) / len(conditional)
        assert 0.2 < taken_fraction < 0.8

    def test_pattern_branch_periodic(self):
        trace = run_kernels(
            [lambda b, r: K.branchy(b, r, reps=1, random_branches=0,
                                    pattern_branches=1, pattern_period=4)],
            instructions=4000,
        )
        conditional = [d for d in trace if d.is_conditional]
        outcomes = [d.taken for d in conditional]
        # Period 4: outcome sequence repeats exactly.
        assert outcomes[:40] == outcomes[4:44]
