"""Shared helpers for the test suites (no fixtures, plain imports)."""

from __future__ import annotations

import dataclasses


def stats_dict(stats) -> dict:
    """Stats as a plain dict (without the free-form extras).

    The canonical bit-for-bit comparison form used by the golden,
    equivalence, store, sampling and sweep suites alike.
    """
    data = dataclasses.asdict(stats)
    data.pop("extra")
    return data
