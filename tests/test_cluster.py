"""Fault matrix for the cross-host sweep cluster (DESIGN.md §15).

The wire protocol's failure surface (oversized, truncated, malformed —
over both the Unix and TCP listeners, same code path); client dial
retry; the capability handshake rejecting incompatible hosts; dead-host
detection with shard reassignment; duplicate results from slow hosts;
graceful inline degradation with no healthy hosts; and the artifact
plane — digest-verified lake write-back that a fresh coordinator process
can serve from without simulating.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import env as api_env
from repro.api.result import RunResult
from repro.api.session import Session
from repro.api.spec import (
    ExperimentSpec,
    StoreSpec,
    WindowSpec,
    default_mechanisms,
)
from repro.cluster import client, framing
from repro.cluster.dispatch import RemoteDispatcher, run_clustered
from repro.cluster.framing import FrameError
from repro.cluster.hosts import (
    HostSpec,
    capability_mismatch,
    local_capabilities,
    parse_hosts,
)
from repro.cluster.pool import HostPool
from repro.service.server import SweepServer, request
from repro.service.shards import (
    merge_shards,
    plan_shards,
    validate_shard_result,
)
from repro.service.supervisor import ShardSupervisor
from repro.service.worker import execute_shard


def tiny_spec(**overrides) -> ExperimentSpec:
    settings = dict(
        benchmarks=("mcf", "dealII"),
        mechanisms=default_mechanisms(),
        seeds=(1,),
        window=WindowSpec(warmup=128, measure=512),
        store=StoreSpec(enabled=False),
    )
    settings.update(overrides)
    return ExperimentSpec(**settings)


def fast_supervisor(**overrides) -> ShardSupervisor:
    settings = dict(
        backoff_base=0.01, backoff_cap=0.05, deadline=60.0,
        poll_interval=0.005, faults="",
    )
    settings.update(overrides)
    return ShardSupervisor(**settings)


@pytest.fixture(scope="module")
def reference() -> RunResult:
    """The unfaulted in-process artifact every clustered run must match."""
    spec = tiny_spec()
    return Session.for_spec(spec).run(spec)


class ServerThread:
    """A SweepServer on a background thread, TCP and/or Unix."""

    def __init__(self, socket_path=None, tcp=("127.0.0.1", 0),
                 stream_limit=framing.STREAM_LIMIT, **supervisor_overrides):
        self.server = SweepServer(
            socket_path, supervisor=fast_supervisor(**supervisor_overrides),
            tcp=tcp, stream_limit=stream_limit,
        )
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.server.serve())
        except asyncio.CancelledError:
            pass
        finally:
            self.loop.close()

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            tcp_ready = self.server.tcp is None \
                or self.server.bound_address is not None
            unix_ready = self.server.socket_path is None \
                or self.server.socket_path.exists()
            if tcp_ready and unix_ready:
                return self
            time.sleep(0.01)
        raise RuntimeError("server never bound its listeners")

    @property
    def address(self) -> tuple[str, int]:
        return self.server.bound_address

    @property
    def host_list(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def __exit__(self, *exc_info):
        def cancel_all():
            for task in asyncio.all_tasks(self.loop):
                task.cancel()
        self.loop.call_soon_threadsafe(cancel_all)
        self.thread.join(timeout=10.0)


class ScriptedHost:
    """A fake host speaking just enough protocol to misbehave on cue.

    *capabilities* is what it answers to ``hello`` (default: this
    build's own, i.e. it passes the handshake); *on_shard* scripts the
    shard op: ``"close"`` drops the connection without a byte (host
    death), ``"truncate"`` sends half a response then drops.
    """

    def __init__(self, capabilities=None, on_shard="close"):
        self.capabilities = (
            local_capabilities() if capabilities is None else capabilities
        )
        self.on_shard = on_shard
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.listener.settimeout(0.1)
        self.address = self.listener.getsockname()[:2]
        self.shard_requests = 0
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._serve, daemon=True)

    @property
    def host_list(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self.listener.accept()
            except TimeoutError:
                continue
            with conn:
                conn.settimeout(5.0)
                data = b""
                try:
                    while not data.endswith(b"\n"):
                        chunk = conn.recv(1 << 16)
                        if not chunk:
                            break
                        data += chunk
                    message = json.loads(data.decode("utf-8"))
                    if message.get("op") == "hello":
                        conn.sendall(framing.encode_frame(
                            {"ok": True, "hello": self.capabilities}
                        ))
                    elif message.get("op") == "shard":
                        self.shard_requests += 1
                        if self.on_shard == "truncate":
                            conn.sendall(b'{"ok": true, "resu')
                        # "close": fall through — EOF mid-shard.
                except (OSError, ValueError):
                    pass

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self.thread.join(timeout=5.0)
        self.listener.close()


# ---------------------------------------------------------------------------
# Host addressing and environment
# ---------------------------------------------------------------------------


class TestHosts:
    def test_parse_round_trip(self):
        spec = HostSpec.parse("node-a:9091")
        assert spec == HostSpec("node-a", 9091)
        assert spec.address == ("node-a", 9091)
        assert HostSpec.parse(spec.label) == spec

    def test_parse_ipv6_brackets(self):
        spec = HostSpec.parse("[::1]:9091")
        assert spec == HostSpec("::1", 9091)
        assert spec.label == "[::1]:9091"
        assert HostSpec.parse(spec.label) == spec

    @pytest.mark.parametrize("text", [
        "nope", ":9091", "host:", "host:abc", "host:-1", "host:70000",
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            HostSpec.parse(text)

    def test_parse_hosts_list(self):
        specs = parse_hosts("a:1, b:2,,c:3")
        assert [s.label for s in specs] == ["a:1", "b:2", "c:3"]
        assert parse_hosts(None) == ()
        assert parse_hosts("  ") == ()

    def test_parse_hosts_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_hosts("a:1,a:1")

    def test_env_readers(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        monkeypatch.delenv("REPRO_CONNECT_TIMEOUT", raising=False)
        assert api_env.hosts_from_env() is None
        assert api_env.connect_timeout_from_env() == 5.0
        monkeypatch.setenv("REPRO_HOSTS", "a:1,b:2")
        monkeypatch.setenv("REPRO_CONNECT_TIMEOUT", "0.01")
        assert api_env.hosts_from_env() == "a:1,b:2"
        assert api_env.connect_timeout_from_env() == 0.1  # floored

    def test_known_vars_cover_cluster(self):
        assert "REPRO_HOSTS" in api_env.KNOWN_VARS
        assert "REPRO_CONNECT_TIMEOUT" in api_env.KNOWN_VARS


class TestCapabilities:
    def test_self_compatible(self):
        assert capability_mismatch(local_capabilities()) is None

    def test_extra_keys_ignored(self):
        caps = dict(local_capabilities(), future_field="whatever")
        assert capability_mismatch(caps) is None

    @pytest.mark.parametrize("key", [
        "protocol", "workload_version", "cell_format",
    ])
    def test_each_capability_enforced(self, key):
        caps = dict(local_capabilities())
        caps[key] = "bogus"
        assert key in capability_mismatch(caps)

    def test_non_dict_rejected(self):
        assert capability_mismatch(None) is not None


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"op": "hello", "n": 1}
        assert framing.decode_frame(
            framing.encode_frame(message).decode()
        ) == message

    @pytest.mark.parametrize("text", ["not json\n", "[1, 2]\n", '"str"\n'])
    def test_decode_malformed(self, text):
        with pytest.raises(FrameError) as err:
            framing.decode_frame(text)
        assert err.value.kind == "malformed"

    def test_recv_frame_closed_and_truncated(self):
        for payload, kind in ((b"", "closed"), (b'{"ok": tr', "truncated")):
            a, b = socket.socketpair()
            with a, b:
                a.sendall(payload)
                a.close()
                with pytest.raises(FrameError) as err:
                    framing.recv_frame(b)
                assert err.value.kind == kind

    def test_recv_frame_oversized(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(b"x" * 256)
            with pytest.raises(FrameError) as err:
                framing.recv_frame(b, limit=64)
            assert err.value.kind == "oversized"


# ---------------------------------------------------------------------------
# Server hardening: both listeners, one failure surface
# ---------------------------------------------------------------------------


def _raw_exchange(address, payload: bytes, shutdown=False) -> dict:
    """Send raw bytes, return the server's (framed) response."""
    sock = framing.connect(address, connect_timeout=5.0, timeout=10.0)
    try:
        sock.sendall(payload)
        if shutdown:
            sock.shutdown(socket.SHUT_WR)
        return framing.recv_frame(sock)
    finally:
        sock.close()


class TestServerHardening:
    @pytest.fixture()
    def served(self, tmp_path):
        with ServerThread(
            socket_path=tmp_path / "repro.sock", stream_limit=4096
        ) as served:
            yield served

    def addresses(self, served):
        # The same handler serves both listeners; prove it on each.
        return [served.address, served.server.socket_path]

    def test_malformed_rejected_structured(self, served):
        for address in self.addresses(served):
            reply = _raw_exchange(address, b"this is not json\n")
            assert reply["ok"] is False
            assert reply["kind"] == "malformed"

    def test_truncated_rejected_structured(self, served):
        for address in self.addresses(served):
            reply = _raw_exchange(
                address, b'{"op": "hel', shutdown=True
            )
            assert reply["ok"] is False
            assert reply["kind"] == "truncated"

    def test_oversized_rejected_structured(self, served):
        filler = b'{"spec": "' + b"x" * 8192 + b'"}\n'
        for address in self.addresses(served):
            reply = _raw_exchange(address, filler)
            assert reply["ok"] is False
            assert reply["kind"] == "oversized"

    def test_unknown_op_rejected(self, served):
        reply = client.call(served.address, {"op": "launch-missiles"})
        assert reply["ok"] is False
        assert "unknown op" in reply["error"]

    def test_server_keeps_serving_after_abuse(self, served):
        for address in self.addresses(served):
            _raw_exchange(address, b"garbage\n")
            _raw_exchange(address, b'{"torn', shutdown=True)
            reply = client.call(address, {"op": "hello"})
            assert reply["ok"] is True
            assert capability_mismatch(reply["hello"]) is None
        assert served.server.requests_served >= 6


# ---------------------------------------------------------------------------
# Client dial/retry
# ---------------------------------------------------------------------------


class TestClientRetry:
    def test_connection_refused_raises_without_retries(self):
        listener = socket.create_server(("127.0.0.1", 0))
        address = listener.getsockname()[:2]
        listener.close()  # nobody home
        with pytest.raises(OSError):
            client.call(address, {"op": "hello"}, connect_timeout=1.0)

    def test_refused_retries_are_bounded_and_backed_off(self):
        listener = socket.create_server(("127.0.0.1", 0))
        address = listener.getsockname()[:2]
        listener.close()
        started = time.monotonic()
        with pytest.raises(OSError):
            client.call(
                address, {"op": "hello"}, connect_timeout=1.0,
                retries=3, backoff=0.02,
            )
        # 0.02 + 0.04 + 0.08 of backoff: proves it redialed, bounded.
        assert time.monotonic() - started >= 0.1

    def test_eof_before_response_is_retried(self):
        # First connection is dropped without a byte (a racing restart);
        # the retry gets a real answer.
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(10.0)
        address = listener.getsockname()[:2]
        dropped = threading.Event()

        def serve():
            conn, _ = listener.accept()
            conn.close()  # EOF before any response byte
            dropped.set()
            conn2, _ = listener.accept()
            with conn2:
                conn2.recv(1 << 16)
                conn2.sendall(framing.encode_frame({"ok": True, "n": 2}))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        reply = client.call(
            address, {"op": "ping"}, retries=2, backoff=0.01
        )
        assert reply == {"ok": True, "n": 2}
        assert dropped.is_set()
        thread.join(timeout=5.0)
        listener.close()

    def test_eof_not_retried_without_budget(self):
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(10.0)
        address = listener.getsockname()[:2]

        def serve_once():
            conn, _ = listener.accept()
            conn.recv(1 << 16)  # drain the request, then clean FIN
            conn.close()

        thread = threading.Thread(target=serve_once, daemon=True)
        thread.start()
        with pytest.raises(FrameError) as err:
            client.call(address, {"op": "ping"}, retries=0)
        assert err.value.kind == "closed"
        thread.join(timeout=5.0)
        listener.close()

    def test_request_helper_over_tcp(self, reference):
        # The sweep client rides the same transport: spec in, verified
        # ShardedSweepResult out, over TCP.
        with ServerThread() as served:
            outcome = request(tiny_spec(), served.address, shards=2)
            assert outcome.mode == "sharded"
            assert outcome.digest() == reference.digest()


# ---------------------------------------------------------------------------
# The golden property and the fault matrix
# ---------------------------------------------------------------------------


class TestClusteredRuns:
    def test_clustered_matches_in_process(self, reference):
        with ServerThread() as served:
            outcome = run_clustered(
                tiny_spec(), hosts=served.host_list, shards=2,
                supervisor=fast_supervisor(),
            )
        assert outcome.mode == "clustered"
        assert outcome.complete
        assert outcome.digest() == reference.digest()
        report = outcome.host_reports[served.host_list]
        assert report["status"] == "alive"
        assert report["dispatched"] == 2

    def test_corrupt_artifact_retries_to_identical_digest(self, reference):
        with ServerThread() as served:
            outcome = run_clustered(
                tiny_spec(), hosts=served.host_list, shards=2,
                supervisor=fast_supervisor(faults="corrupt:0,tamper:1"),
            )
        assert outcome.complete
        assert outcome.digest() == reference.digest()
        assert outcome.attempts[0] == 2 and outcome.attempts[1] == 2
        assert outcome.shard_reports[0].failure_kinds == ("corrupt",)
        assert outcome.shard_reports[1].failure_kinds == ("corrupt",)

    def test_dead_host_mid_shard_reassigns(self, reference):
        # The scripted host passes the handshake, then drops the
        # connection on its first shard — the pool marks it dead and
        # the shard reruns on the healthy host.
        with ServerThread() as served, ScriptedHost() as fake:
            outcome = run_clustered(
                tiny_spec(), hosts=f"{fake.host_list},{served.host_list}",
                shards=2, supervisor=fast_supervisor(),
            )
        assert outcome.complete
        assert outcome.digest() == reference.digest()
        assert fake.shard_requests >= 1
        assert outcome.host_reports[fake.host_list]["status"] == "dead"
        assert outcome.host_reports[served.host_list]["status"] == "alive"
        assert any(
            "host-death" in report.failure_kinds
            for report in outcome.shard_reports.values()
        )

    def test_truncated_response_is_host_death(self, reference):
        with ServerThread() as served, \
                ScriptedHost(on_shard="truncate") as fake:
            outcome = run_clustered(
                tiny_spec(), hosts=f"{fake.host_list},{served.host_list}",
                shards=2, supervisor=fast_supervisor(),
            )
        assert outcome.complete
        assert outcome.digest() == reference.digest()
        assert outcome.host_reports[fake.host_list]["status"] == "dead"

    def test_handshake_mismatch_rejects_and_reroutes(self, reference):
        wrong = dict(local_capabilities(), workload_version="0000deadbeef")
        with ServerThread() as served, \
                ScriptedHost(capabilities=wrong) as fake:
            outcome = run_clustered(
                tiny_spec(), hosts=f"{fake.host_list},{served.host_list}",
                shards=2, supervisor=fast_supervisor(),
            )
        assert outcome.complete
        assert outcome.digest() == reference.digest()
        rejected = outcome.host_reports[fake.host_list]
        assert rejected["status"] == "rejected"
        assert "workload_version" in rejected["reason"]
        # The incompatible host never received a shard.
        assert fake.shard_requests == 0
        assert outcome.host_reports[served.host_list]["dispatched"] == 2

    def test_hang_times_out_without_marking_dead(self, reference):
        spec = tiny_spec()
        session = Session.for_spec(spec)
        with ServerThread() as served:
            pool = HostPool([HostSpec.parse(served.host_list)])
            dispatcher = RemoteDispatcher(
                pool, session.engine, deadline=2.0
            )
            supervisor = fast_supervisor(
                faults="hang:0", dispatcher=dispatcher
            )
            outcome = supervisor.run(spec, shards=2)
        assert outcome.complete
        assert outcome.digest() == reference.digest()
        assert outcome.shard_reports[0].failure_kinds == ("hang",)
        # A timeout is not proof of death: the host stays in the pool.
        assert pool.report()[served.host_list]["status"] == "alive"

    def test_no_healthy_hosts_degrades_inline(self, reference):
        listener = socket.create_server(("127.0.0.1", 0))
        dead_address = "{}:{}".format(*listener.getsockname()[:2])
        listener.close()
        spec = tiny_spec()
        session = Session.for_spec(spec)
        pool = HostPool(
            parse_hosts(dead_address), connect_timeout=0.5
        )
        dispatcher = RemoteDispatcher(pool, session.engine)
        supervisor = fast_supervisor(dispatcher=dispatcher)
        outcome = supervisor.run(spec, shards=2)
        assert outcome.mode == "clustered"
        assert outcome.complete
        assert outcome.digest() == reference.digest()
        assert dispatcher.inline_shards == 2
        assert pool.report()[dead_address]["status"] == "dead"

    def test_duplicate_shard_result_from_slow_host_merges(self, reference):
        # Reassignment can leave two hosts computing one shard; the
        # merge is duplicate-tolerant because cells are deterministic.
        spec = tiny_spec()
        shards = plan_shards(spec, 2)
        first = execute_shard(shards[0])
        again = execute_shard(shards[0])  # the "slow host" answer
        second = execute_shard(shards[1])
        merged, holes = merge_shards(spec, [first, again, second])
        assert not holes
        assert merged.digest() == reference.digest()

    def test_run_clustered_needs_hosts(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        with pytest.raises(ValueError, match="REPRO_HOSTS"):
            run_clustered(tiny_spec())


# ---------------------------------------------------------------------------
# Artifact plane: verified lake write-back
# ---------------------------------------------------------------------------


class TestLakeWriteBack:
    def lake_spec(self, root) -> ExperimentSpec:
        return tiny_spec(store=StoreSpec(path=str(root), result_lake=True))

    def test_round_trip_warms_fresh_coordinator_process(
        self, tmp_path, reference
    ):
        spec = self.lake_spec(tmp_path / "lake")
        with ServerThread() as served:
            session = Session.for_spec(spec)
            outcome = session.run_clustered(
                spec, hosts=served.host_list, shards=2
            )
        assert outcome.complete
        assert outcome.digest() == reference.digest()
        cells = list((tmp_path / "lake").glob("*.cell"))
        assert len(cells) == spec.cells
        # A fresh coordinator *process* on the written-back lake must
        # serve every cell from disk — zero simulations.
        probe = (
            "import json, sys\n"
            "from repro.api.session import Session\n"
            "from repro.api.spec import ExperimentSpec\n"
            "spec = ExperimentSpec.from_dict("
            "json.loads(sys.argv[1]))\n"
            "session = Session.for_spec(spec)\n"
            "result = session.run(spec)\n"
            "print('simulated=%d digest=%s' % ("
            "session.engine.cell_misses, result.digest()))\n"
        )
        child = subprocess.run(
            [sys.executable, "-c", probe, json.dumps(spec.to_dict())],
            capture_output=True, text=True,
            env={
                **os.environ,
                "PYTHONPATH": str(
                    Path(__file__).resolve().parent.parent / "src"
                ),
            },
        )
        assert child.returncode == 0, child.stderr
        line = child.stdout.strip().splitlines()[-1]
        fields = dict(part.split("=", 1) for part in line.split())
        assert fields["simulated"] == "0"
        assert fields["digest"] == reference.digest()

    def test_write_back_drops_unverifiable_entries(self, tmp_path):
        spec = self.lake_spec(tmp_path / "lake")
        session = Session.for_spec(spec)
        shards = plan_shards(spec, 2)
        shard = shards[0]
        pool = HostPool([HostSpec("unused", 1)])
        dispatcher = RemoteDispatcher(pool, session.engine)
        # Execute on a lake-less engine, as a remote host would — the
        # coordinator's lake must be warmed by _write_back alone.
        result = execute_shard(
            shard, Session(store=StoreSpec(enabled=False)).engine
        )
        engine = session.engine
        good = []
        for benchmark, mech_index, seed in shard.cells:
            mechanism = spec.mechanisms[mech_index]
            cell = next(
                c for c in result.cells
                if (c.benchmark, c.mechanism, c.seed)
                == (benchmark, mechanism.name, seed)
            )
            good.append({
                "benchmark": benchmark,
                "seed": seed,
                "token": engine.cell_token(
                    mechanism, spec.window.warmup, spec.window.measure,
                    spec.sampling,
                ),
                "stats": dataclasses.asdict(cell.stats),
                "meta": {"mechanism": mechanism.name},
            })
        tampered = json.loads(json.dumps(good[0]))
        tampered["stats"]["committed"] += 7  # stats a digest never saw
        keyed_wrong = json.loads(json.dumps(good[1]))
        keyed_wrong["token"] = "a-token-of-the-hosts-choosing"
        dispatcher._write_back(
            shard, result, [tampered, keyed_wrong, "junk", good[0]]
        )
        assert dispatcher.lake_writebacks == 1
        assert dispatcher.lake_dropped == 3
        store = session.engine.simulator.trace_store
        payload = store.load_cell(
            good[0]["benchmark"], good[0]["seed"], good[0]["token"]
        )
        assert payload is not None
        assert payload["stats"]["committed"] == \
            good[0]["stats"]["committed"]
        # The tampered stats never landed anywhere.
        assert len(list(store.root.glob("*.cell"))) == 1


# ---------------------------------------------------------------------------
# Shared validation and CLI error paths
# ---------------------------------------------------------------------------


class TestValidation:
    def test_validate_shard_result_matrix(self):
        spec = tiny_spec()
        shards = plan_shards(spec, 2)
        result = execute_shard(shards[0])
        assert validate_shard_result(shards[0], result) is None
        kind, _ = validate_shard_result(shards[1], result)
        assert kind == "foreign"
        short = dataclasses.replace(result, cells=result.cells[:-1])
        kind, _ = validate_shard_result(shards[0], short)
        assert kind == "corrupt"


class TestCli:
    def test_serve_rejects_bad_tcp(self, capsys):
        from repro.api.cli import main

        assert main(["serve", "--tcp", "nonsense"]) == 2
        assert "host:port" in capsys.readouterr().err

    def test_sweep_smoke_hosts_accepts_only_loopback(self, capsys):
        from repro.api.cli import main

        assert main(["sweep", "--smoke", "--hosts", "a:1"]) == 2
        assert "loopback" in capsys.readouterr().err
