"""Integration tests: the full pipeline on real traces, plus the frontend
branch unit, workloads and harness."""

import pytest

from repro.frontend.branch_unit import BranchUnit
from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.harness.redundancy import analyze_benchmark, analyze_trace
from repro.harness.reporting import Table, geometric_mean, harmonic_mean
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.core import Pipeline
from repro.pipeline.simulator import Simulator
from repro.workloads.builder import ProgramBuilder
from repro.workloads.spec2006 import (
    SPEC2006,
    benchmark_names,
    build_benchmark,
    generate_trace,
)
from repro.workloads.trace import Machine, execute
from repro.isa.registers import x


def chain_trace(length=6000):
    """A simple strided loop trace for pipeline tests."""
    b = ProgramBuilder("chain")
    b.movz(x(1), 0)
    b.movz(x(2), 7)
    head = b.label(b.fresh_label("head"))
    for _ in range(4):
        b.addi(x(1), x(1), 3)
        b.add(x(3), x(1), x(2))
    b.b(head)
    b.halt()
    return execute(b.build(), length, Machine(dict(b.data.image)))


class TestBranchUnit:
    def make(self):
        history, path = GlobalHistory(), PathHistory()
        return BranchUnit(history, path, XorShift64(1))

    def test_conditional_flow(self):
        unit = self.make()
        trace = generate_trace("gobmk", 4000, seed=1)
        mispredicts = 0
        for d in trace:
            if d.is_branch:
                outcome = unit.fetch_branch(d)
                mispredicts += outcome.mispredicted
                unit.commit_branch(outcome)
        assert unit.conditional_branches > 100
        # gobmk's random branches guarantee some mispredicts, its loop
        # branches guarantee the rate is far below 50%.
        assert 0 < mispredicts < unit.conditional_branches * 0.45

    def test_squash_restores_state(self):
        unit = self.make()
        trace = generate_trace("perlbench", 2000, seed=1)
        branches = [d for d in trace if d.is_branch]
        outcome = unit.fetch_branch(branches[0])
        snapshot_after = unit.history.snapshot()
        for d in branches[1:10]:
            unit.fetch_branch(d)
        unit.squash_to(unit.fetch_branch(branches[10]))
        # Restoring must rebuild the *entire* fold state from the raw-bit
        # checkpoint: the full (raw, folds) snapshot right before a fetch
        # must come back exactly after squashing that fetch.
        full_before = unit.history.snapshot()
        check = unit.fetch_branch(branches[10])
        unit.squash_to(check)
        assert unit.history.snapshot_raw() == check.history_snapshot
        assert unit.history.snapshot() == full_before


class TestWorkloads:
    def test_all_benchmarks_assemble_and_run(self):
        for name in benchmark_names():
            trace = generate_trace(name, 1500, seed=2)
            assert len(trace) == 1500, name

    def test_suite_split(self):
        assert len(benchmark_names()) == 29
        assert len(benchmark_names("int")) == 12
        assert len(benchmark_names("fp")) == 17

    def test_seeds_change_data_not_shape(self):
        trace_a = generate_trace("mcf", 2000, seed=1)
        trace_b = generate_trace("mcf", 2000, seed=2)
        pcs_a = [d.pc for d in trace_a]
        pcs_b = [d.pc for d in trace_b]
        values_a = [d.result for d in trace_a if d.produces_result()]
        values_b = [d.result for d in trace_b if d.produces_result()]
        assert pcs_a == pcs_b          # same code path
        assert values_a != values_b    # different checkpoint data

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("spec2017")

    def test_descriptions_present(self):
        for spec in SPEC2006.values():
            assert spec.description
            assert spec.suite in ("int", "fp")


class TestRedundancyAnalysis:
    def test_zero_heavy_benchmarks(self):
        zeusmp = analyze_benchmark("zeusmp", 12000)
        gobmk = analyze_benchmark("gobmk", 12000)
        assert zeusmp.zero_fraction > 0.05          # Fig. 1 shape (see EXPERIMENTS.md)
        assert zeusmp.zero_fraction > gobmk.zero_fraction

    def test_reuse_rich_benchmarks(self):
        libquantum = analyze_benchmark("libquantum", 12000)
        assert libquantum.in_prf_fraction > 0.10

    def test_zero_idioms_excluded(self):
        profile = analyze_benchmark("dealII", 8000)
        assert profile.committed == 8000
        # Idioms are tracked separately, never double counted as zeros.
        assert profile.zero_idioms >= 0
        total = (
            profile.zero_load + profile.zero_other
            + profile.in_prf_load + profile.in_prf_other
            + profile.zero_idioms
        )
        assert total <= profile.producers

    def test_analyze_trace_direct(self):
        profile = analyze_trace(chain_trace(3000))
        assert profile.committed == 3000


class TestReporting:
    def test_means(self):
        assert harmonic_mean([1.0, 1.0]) == 1.0
        assert harmonic_mean([]) == 0.0
        assert geometric_mean([2.0, 8.0]) == 4.0

    def test_table_rendering(self):
        table = Table(["bench", "ipc"])
        table.add_row("mcf", 0.75)
        text = table.render()
        assert "mcf" in text and "0.750" in text


class TestPipelineBaseline:
    def test_commits_every_instruction_once(self):
        trace = chain_trace(5000)
        pipeline = Pipeline(trace, mechanisms=MechanismConfig.baseline())
        stats = pipeline.run(4000, warmup=500)
        assert stats.committed == 4000

    def test_ipc_bounded_by_width(self):
        trace = chain_trace(5000)
        pipeline = Pipeline(trace, mechanisms=MechanismConfig.baseline())
        stats = pipeline.run(4000, warmup=500)
        assert 0.1 < stats.ipc <= 8.0

    def test_trace_exhaustion_terminates(self):
        trace = chain_trace(800)
        pipeline = Pipeline(trace, mechanisms=MechanismConfig.baseline())
        stats = pipeline.run(10_000, warmup=0)
        assert stats.committed == 800

    def test_serial_chain_bounds_ipc(self):
        # A pure dependent chain cannot exceed 1 ALU op per cycle by much.
        b = ProgramBuilder("serial")
        b.movz(x(1), 1)
        head = b.label(b.fresh_label("head"))
        for _ in range(8):
            b.addi(x(1), x(1), 1)
        b.b(head)
        b.halt()
        trace = execute(b.build(), 4000, Machine())
        stats = Pipeline(trace).run(3000, warmup=500)
        assert stats.ipc < 1.5

    def test_independent_work_reaches_high_ipc(self):
        b = ProgramBuilder("wide")
        regs = [x(i) for i in range(1, 9)]
        for reg in regs:
            b.movz(reg, 0)
        head = b.label(b.fresh_label("head"))
        for reg in regs:
            b.addi(reg, reg, 1)
        b.b(head)
        b.halt()
        trace = execute(b.build(), 6000, Machine())
        stats = Pipeline(trace).run(4000, warmup=1000)
        assert stats.ipc > 3.0


class TestPipelineMechanisms:
    def test_rsep_collapses_xor_ring(self):
        trace = generate_trace("dealII", 30000, seed=1)
        base = Pipeline(trace, mechanisms=MechanismConfig.baseline())
        rsep = Pipeline(trace, mechanisms=MechanismConfig.rsep_ideal())
        base_stats = base.run(16000, warmup=8000)
        rsep_stats = rsep.run(16000, warmup=8000)
        assert rsep_stats.ipc > base_stats.ipc * 1.04
        assert rsep_stats.dist_pred > 0

    def test_vp_collapses_stride_chain(self):
        # A serial strided chain is the canonical D-VTAGE win: breaking
        # the loop-carried dependence lifts IPC well above the baseline.
        from repro.common.rng import XorShift64
        from repro.workloads import kernels as K

        b = ProgramBuilder("stride-dominated")
        rng = XorShift64(17)
        chain = K.stride_chain(b, rng, chain=12)
        noise = K.lcg_noise(b, rng, reps=1)
        entry = b.fresh_label("main")
        b.b(entry)
        b.label(entry)
        chain.setup(), noise.setup()
        loop = b.label(b.fresh_label("outer"))
        chain.body(), noise.body()
        b.b(loop)
        b.halt()
        trace = execute(b.build(), 30000, Machine(dict(b.data.image)))

        base = Pipeline(trace, mechanisms=MechanismConfig.baseline())
        vp = Pipeline(trace, mechanisms=MechanismConfig.value_prediction())
        base_stats = base.run(16000, warmup=8000)
        vp_stats = vp.run(16000, warmup=8000)
        assert vp_stats.ipc > base_stats.ipc * 1.10
        assert vp_stats.value_pred > 0

    def test_rsep_accuracy_above_paper_floor(self):
        # §VI.B: accuracy always greater than 99.5%.
        trace = generate_trace("mcf", 30000, seed=1)
        pipeline = Pipeline(trace, mechanisms=MechanismConfig.rsep_ideal())
        stats = pipeline.run(16000, warmup=8000)
        assert stats.dist_pred > 200
        assert stats.rsep_accuracy > 0.99

    def test_zero_idiom_elimination_in_baseline(self):
        b = ProgramBuilder("idioms")
        head = b.label(b.fresh_label("head"))
        b.eor(x(1), x(2), x(2))
        b.addi(x(2), x(2), 1)
        b.b(head)
        b.halt()
        trace = execute(b.build(), 3000, Machine())
        stats = Pipeline(trace).run(2000, warmup=500)
        assert stats.zero_idiom_elim > 500

    def test_move_elimination_counts(self):
        trace = generate_trace("dealII", 20000, seed=1)
        pipeline = Pipeline(
            trace, mechanisms=MechanismConfig.move_elimination()
        )
        stats = pipeline.run(10000, warmup=6000)
        assert stats.move_elim > 0

    def test_combined_mechanisms_coverage_disjoint(self):
        trace = generate_trace("libquantum", 30000, seed=1)
        pipeline = Pipeline(trace, mechanisms=MechanismConfig.rsep_plus_vp())
        stats = pipeline.run(16000, warmup=8000)
        covered = (
            stats.zero_idiom_elim + stats.move_elim + stats.zero_pred
            + stats.dist_pred + stats.value_pred
        )
        assert covered <= stats.committed

    def test_validation_mode_costs_ordered(self):
        # Fig. 6: ideal >= any-FU >= lock-FU on load-heavy code.
        from repro.core.validation import ValidationMode

        trace = generate_trace("mcf", 30000, seed=1)
        ipcs = {}
        for mode in (
            ValidationMode.IDEAL,
            ValidationMode.REISSUE_ANY_FU,
            ValidationMode.REISSUE_LOCK_FU,
        ):
            mech = MechanismConfig.rsep_validation(mode)
            stats = Pipeline(trace, mechanisms=mech).run(14000, warmup=8000)
            ipcs[mode] = stats.ipc
        assert ipcs[ValidationMode.IDEAL] >= ipcs[
            ValidationMode.REISSUE_ANY_FU
        ] * 0.995
        assert ipcs[ValidationMode.REISSUE_ANY_FU] >= ipcs[
            ValidationMode.REISSUE_LOCK_FU
        ] * 0.99


class TestPipelineInvariants:
    def test_no_preg_leak_under_squashes(self):
        # Run a squash-heavy configuration and verify every physical
        # register is either free or architecturally reachable at the end.
        trace = generate_trace("soplex", 24000, seed=1)
        pipeline = Pipeline(trace, mechanisms=MechanismConfig.rsep_plus_vp())
        pipeline.run(12000, warmup=6000)
        free = pipeline.free_list.free_int + pipeline.free_list.free_fp
        inflight_dests = sum(
            1 for op in pipeline.rob
            if op.allocated
        )
        mapped = len(
            set(pipeline.rename_map.mapped_pregs()) - {pipeline.zero_preg}
        )
        total = pipeline.config.int_pregs + pipeline.config.fp_pregs
        # mapped + free + (allocated to in-flight but not yet mapped-over)
        # must cover the whole file; sharing makes mapped an overestimate
        # only when two arch regs point at one preg.
        assert free + mapped + inflight_dests >= total - 2
        assert free >= 0

    def test_determinism(self):
        trace = generate_trace("omnetpp", 16000, seed=3)
        first = Pipeline(
            trace, mechanisms=MechanismConfig.rsep_ideal(), seed=5
        ).run(8000, warmup=4000)
        second = Pipeline(
            trace, mechanisms=MechanismConfig.rsep_ideal(), seed=5
        ).run(8000, warmup=4000)
        assert first.cycles == second.cycles
        assert first.dist_pred == second.dist_pred

    def test_memory_order_violations_recovered(self):
        trace = generate_trace("xalancbmk", 20000, seed=1)
        pipeline = Pipeline(trace, mechanisms=MechanismConfig.baseline())
        stats = pipeline.run(10000, warmup=5000)
        assert stats.committed >= 10000  # violations squash but recover


class TestSimulatorAndRunner:
    def test_simulator_caches_traces(self):
        simulator = Simulator()
        simulator.run_benchmark("gcc", MechanismConfig.baseline(),
                                warmup=500, measure=1000)
        simulator.run_benchmark("gcc", MechanismConfig.rsep_ideal(),
                                warmup=500, measure=1000)
        assert len(simulator._trace_cache) == 1

    def test_runner_speedup_query(self):
        runner = ExperimentRunner(
            benchmarks=["hmmer"], seeds=[1], warmup=8000, measure=20000
        )
        runner.run([MechanismConfig.baseline(), MechanismConfig.rsep_ideal()])
        speedup = runner.speedup("hmmer", "rsep")
        assert speedup > 0.02

    def test_runner_memoizes(self):
        runner = ExperimentRunner(
            benchmarks=["gcc"], seeds=[1], warmup=500, measure=1000
        )
        first = runner.run_cell("gcc", MechanismConfig.baseline())
        second = runner.run_cell("gcc", MechanismConfig.baseline())
        assert first is second

    def test_core_config_redirect_derivation(self):
        config = CoreConfig()
        assert (
            config.redirect_delay + config.frontend_depth + 1
            == config.mispredict_penalty
        )
