"""Tests for the micro-ISA, program assembly and the functional interpreter."""

import pytest

from repro.common.bitops import mask64
from repro.isa.instruction import Instr, NO_REG
from repro.isa.opcodes import FuClass, OP_INFO, Opcode
from repro.isa.program import Program, ProgramError
from repro.isa.registers import XZR, f, reg_class, reg_name, x, RegClass
from repro.workloads.builder import ProgramBuilder
from repro.workloads.trace import (
    Machine,
    bits_to_float,
    execute,
    float_to_bits,
)


def run_snippet(emit, max_instructions=1000, image=None):
    """Build a program from *emit* and execute it with its data image."""
    b = ProgramBuilder("snippet")
    emit(b)
    b.halt()
    machine = Machine(image if image is not None else dict(b.data.image))
    trace = execute(b.build(), max_instructions, machine)
    return trace, machine


class TestRegisters:
    def test_unified_numbering(self):
        assert x(0) == 0 and x(30) == 30
        assert f(0) == 32 and f(31) == 63
        assert reg_class(5) == RegClass.INT
        assert reg_class(f(3)) == RegClass.FP

    def test_names(self):
        assert reg_name(XZR) == "xzr"
        assert reg_name(x(4)) == "x4"
        assert reg_name(f(2)) == "f2"

    def test_bounds(self):
        with pytest.raises(ValueError):
            x(32)
        with pytest.raises(ValueError):
            f(32)


class TestOpcodeMetadata:
    def test_every_opcode_has_info(self):
        for op in Opcode:
            assert op in OP_INFO

    def test_divider_not_pipelined(self):
        assert not OP_INFO[Opcode.DIV].pipelined
        assert not OP_INFO[Opcode.FDIV].pipelined
        assert OP_INFO[Opcode.MUL].pipelined

    def test_table_i_latencies(self):
        assert OP_INFO[Opcode.ADD].latency == 1
        assert OP_INFO[Opcode.MUL].latency == 3
        assert OP_INFO[Opcode.DIV].latency == 25
        assert OP_INFO[Opcode.FADD].latency == 3
        assert OP_INFO[Opcode.FDIV].latency == 11

    def test_fu_classes(self):
        assert OP_INFO[Opcode.LDR].fu_class == FuClass.MEM_LOAD
        assert OP_INFO[Opcode.STR].fu_class == FuClass.MEM_STORE
        assert OP_INFO[Opcode.BEQ].fu_class == FuClass.BRANCH


class TestZeroIdiomsAndMoves:
    def test_eor_same_register(self):
        assert Instr(Opcode.EOR, rd=1, rs1=2, rs2=2).is_zero_idiom()
        assert not Instr(Opcode.EOR, rd=1, rs1=2, rs2=3).is_zero_idiom()

    def test_sub_same_register(self):
        assert Instr(Opcode.SUB, rd=1, rs1=4, rs2=4).is_zero_idiom()

    def test_movz_zero(self):
        assert Instr(Opcode.MOVZ, rd=1, imm=0).is_zero_idiom()
        assert not Instr(Opcode.MOVZ, rd=1, imm=7).is_zero_idiom()

    def test_and_with_zero_register(self):
        assert Instr(Opcode.AND, rd=1, rs1=XZR, rs2=5).is_zero_idiom()
        assert Instr(Opcode.ANDI, rd=1, rs1=5, imm=0).is_zero_idiom()

    def test_move_detection(self):
        assert Instr(Opcode.MOV, rd=1, rs1=2).is_move()
        # mov from XZR is a zero idiom, not a move-elimination candidate.
        assert not Instr(Opcode.MOV, rd=1, rs1=XZR).is_move()
        assert Instr(Opcode.MOV, rd=1, rs1=XZR).is_zero_idiom()


class TestProgramValidation:
    def test_must_end_with_halt(self):
        with pytest.raises(ProgramError):
            Program("p", [Instr(Opcode.NOP)])

    def test_branch_target_bounds(self):
        instrs = [Instr(Opcode.B, target=5), Instr(Opcode.HALT)]
        with pytest.raises(ProgramError):
            Program("p", instrs)

    def test_pc_round_trip(self):
        b = ProgramBuilder("p")
        b.nop(), b.nop(), b.halt()
        program = b.build()
        for index in range(len(program)):
            assert program.index_of(program.pc_of(index)) == index

    def test_undefined_label(self):
        b = ProgramBuilder("p")
        b.b("nowhere")
        b.halt()
        with pytest.raises(ProgramError):
            b.build()

    def test_duplicate_label(self):
        b = ProgramBuilder("p")
        b.label("dup")
        with pytest.raises(ProgramError):
            b.label("dup")


class TestInterpreterArithmetic:
    def test_add_sub_masking(self):
        def emit(b):
            b.load_imm64(x(1), mask64(-1))
            b.addi(x(2), x(1), 1)          # wraps to 0
            b.subi(x(3), x(2), 1)          # wraps back to -1
        trace, m = run_snippet(emit)
        assert m.read_reg(x(2)) == 0
        assert m.read_reg(x(3)) == mask64(-1)

    def test_logic_and_shifts(self):
        def emit(b):
            b.movz(x(1), 0b1100)
            b.movz(x(2), 0b1010)
            b.and_(x(3), x(1), x(2))
            b.orr(x(4), x(1), x(2))
            b.eor(x(5), x(1), x(2))
            b.lsli(x(6), x(1), 2)
            b.lsri(x(7), x(1), 2)
        _, m = run_snippet(emit)
        assert m.read_reg(x(3)) == 0b1000
        assert m.read_reg(x(4)) == 0b1110
        assert m.read_reg(x(5)) == 0b0110
        assert m.read_reg(x(6)) == 0b110000
        assert m.read_reg(x(7)) == 0b11

    def test_mul_div_semantics(self):
        def emit(b):
            b.movz(x(1), 7)
            b.load_imm64(x(2), mask64(-3))
            b.mul(x(3), x(1), x(2))
            b.div(x(4), x(2), x(1))        # -3 / 7 == 0 (truncation)
            b.load_imm64(x(5), mask64(-21))
            b.div(x(6), x(5), x(1))        # -21 / 7 == -3
            b.movz(x(7), 0)
            b.div(x(8), x(1), x(7))        # divide by zero -> 0
        _, m = run_snippet(emit)
        assert m.read_reg(x(3)) == mask64(-21)
        assert m.read_reg(x(4)) == 0
        assert m.read_reg(x(6)) == mask64(-3)
        assert m.read_reg(x(8)) == 0

    def test_writes_to_xzr_discarded(self):
        def emit(b):
            b.movz(XZR, 55)
            b.add(x(1), XZR, XZR)
        trace, m = run_snippet(emit)
        assert m.read_reg(x(1)) == 0
        # The movz to XZR must not count as a result producer.
        movz_record = trace[0]
        assert movz_record.dest == NO_REG
        assert not movz_record.produces_result()


class TestInterpreterMemory:
    def test_store_load_round_trip(self):
        def emit(b):
            base = b.data.alloc(64)
            b.load_imm64(x(1), base)
            b.load_imm64(x(2), 0xDEAD_BEEF_0BAD_F00D)
            b.str_(x(2), x(1), 8)
            b.ldr(x(3), x(1), 8)
        trace, m = run_snippet(emit)
        assert m.read_reg(x(3)) == 0xDEAD_BEEF_0BAD_F00D

    def test_byte_load(self):
        def emit(b):
            base = b.data.alloc_bytes(bytes([0x11, 0x22, 0x33, 0x44]))
            b.load_imm64(x(1), base)
            b.ldrb(x(2), x(1), 2)
        b = ProgramBuilder("p")
        emit(b)
        b.halt()
        m = Machine(dict(b.data.image))
        execute(b.build(), 100, m)
        assert m.read_reg(x(2)) == 0x33

    def test_trace_records_addresses(self):
        def emit(b):
            base = b.data.alloc(16)
            b.load_imm64(x(1), base)
            b.str_(x(1), x(1))
            b.ldr(x(2), x(1))
        trace, _ = run_snippet(emit)
        stores = [d for d in trace if d.is_store]
        loads = [d for d in trace if d.is_load]
        assert len(stores) == 1 and len(loads) == 1
        assert stores[0].addr == loads[0].addr


class TestInterpreterControlFlow:
    def test_conditional_branch_taken_and_not(self):
        def emit(b):
            b.movz(x(1), 5)
            b.movz(x(2), 5)
            skip = b.fresh_label("skip")
            b.beq(x(1), x(2), skip)
            b.movz(x(3), 99)           # skipped
            b.label(skip)
            b.movz(x(4), 42)
        _, m = run_snippet(emit)
        assert m.read_reg(x(3)) == 0
        assert m.read_reg(x(4)) == 42

    def test_loop_executes_n_times(self):
        def emit(b):
            b.movz(x(1), 0)
            b.movz(x(2), 10)
            head = b.label(b.fresh_label("head"))
            b.addi(x(1), x(1), 1)
            b.blt(x(1), x(2), head)
        _, m = run_snippet(emit)
        assert m.read_reg(x(1)) == 10

    def test_signed_comparison(self):
        def emit(b):
            b.load_imm64(x(1), mask64(-5))
            b.movz(x(2), 3)
            taken = b.fresh_label("t")
            b.blt(x(1), x(2), taken)   # -5 < 3 signed
            b.movz(x(3), 1)
            b.label(taken)
            b.movz(x(4), 1)
        _, m = run_snippet(emit)
        assert m.read_reg(x(3)) == 0
        assert m.read_reg(x(4)) == 1

    def test_call_and_return(self):
        def emit(b):
            b.b("main")
            b.label("fn")
            b.movz(x(5), 77)
            b.ret()
            b.label("main")
            b.bl("fn")
            b.movz(x(6), 88)
        _, m = run_snippet(emit)
        assert m.read_reg(x(5)) == 77
        assert m.read_reg(x(6)) == 88

    def test_branch_records_target_and_outcome(self):
        def emit(b):
            b.movz(x(1), 1)
            skip = b.fresh_label("s")
            b.beq(x(1), XZR, skip)
            b.nop()
            b.label(skip)
        trace, _ = run_snippet(emit)
        branch = next(d for d in trace if d.is_branch)
        assert not branch.taken
        assert branch.target_pc == branch.pc + 4  # fall-through recorded

    def test_instruction_budget_stops_infinite_loop(self):
        def emit(b):
            head = b.label(b.fresh_label("spin"))
            b.addi(x(1), x(1), 1)
            b.b(head)
        b = ProgramBuilder("p")
        emit(b)
        b.halt()
        trace = execute(b.build(), 500, Machine())
        assert len(trace) == 500


class TestFloatingPoint:
    def test_fp_round_trip(self):
        assert bits_to_float(float_to_bits(2.5)) == 2.5

    def test_fp_arithmetic(self):
        def emit(b):
            b.fmovi(f(1), 1.5)
            b.fmovi(f(2), 2.0)
            b.fadd(f(3), f(1), f(2))
            b.fmul(f(4), f(3), f(2))
            b.fsub(f(5), f(4), f(1))
            b.fdiv(f(6), f(4), f(2))
        _, m = run_snippet(emit)
        assert bits_to_float(m.read_reg(f(3))) == 3.5
        assert bits_to_float(m.read_reg(f(4))) == 7.0
        assert bits_to_float(m.read_reg(f(5))) == 5.5
        assert bits_to_float(m.read_reg(f(6))) == 3.5

    def test_fp_divide_by_zero_gives_infinity(self):
        def emit(b):
            b.fmovi(f(1), 1.0)
            b.fmovi(f(2), 0.0)
            b.fdiv(f(3), f(1), f(2))
        _, m = run_snippet(emit)
        assert bits_to_float(m.read_reg(f(3))) == float("inf")

    def test_fp_memory(self):
        def emit(b):
            base = b.data.alloc_words([float_to_bits(9.25)])
            b.load_imm64(x(1), base)
            b.fldr(f(1), x(1))
            b.fstr(f(1), x(1), 8)
            b.ldr(x(2), x(1), 8)
        _, m = run_snippet(emit)
        assert bits_to_float(m.read_reg(x(2))) == 9.25


class TestDynInstClassification:
    def test_rsep_eligibility(self):
        def emit(b):
            b.movz(x(1), 3)            # eligible
            b.eor(x(2), x(1), x(1))    # zero idiom: not eligible
            b.str_(x(1), x(1))         # store: not eligible (also no dest)
            skip = b.fresh_label("s")
            b.beq(x(1), XZR, skip)
            b.label(skip)
        trace, _ = run_snippet(emit, image={})
        movz, eor, store, branch = trace[:4]
        assert movz.rsep_eligible()
        assert not eor.rsep_eligible()
        assert not store.rsep_eligible()
        assert not branch.rsep_eligible()
