"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.bitops import fold_hash, mask64, to_signed64, from_signed64
from repro.common.history import GlobalHistory
from repro.common.rng import XorShift64
from repro.core.fifo_history import FifoHistory
from repro.core.sharing import ProducerWindow
from repro.isa.registers import RegClass
from repro.rename.free_list import FreeList
from repro.rename.isrb import Isrb

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestBitopsProperties:
    @given(u64)
    def test_fold_hash_in_range(self, value):
        for bits in (8, 13, 14, 16):
            assert 0 <= fold_hash(value, bits) < (1 << bits)

    @given(u64)
    def test_fold_hash_deterministic(self, value):
        assert fold_hash(value, 14) == fold_hash(value, 14)

    @given(u64, u64)
    def test_equal_values_equal_hashes(self, a, b):
        # No false negatives: the hash never misses a true equality.
        if a == b:
            assert fold_hash(a, 14) == fold_hash(b, 14)

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_signed_round_trip(self, value):
        assert to_signed64(from_signed64(value)) == value

    @given(u64, u64)
    def test_mask64_addition_closure(self, a, b):
        assert 0 <= mask64(a + b) < (1 << 64)


class TestFreeListProperties:
    @given(st.lists(st.booleans(), max_size=200))
    def test_alloc_free_conservation(self, operations):
        free_list = FreeList(64, 64)
        allocated = []
        for do_alloc in operations:
            if do_alloc:
                preg = free_list.allocate(RegClass.INT)
                if preg is not None:
                    allocated.append(preg)
            elif allocated:
                free_list.release(allocated.pop())
        assert free_list.free_int + len(allocated) == 64
        assert len(set(allocated)) == len(allocated)  # no duplicates


class TestIsrbProperties:
    @given(st.lists(st.sampled_from(["share", "deref", "unshare"]),
                    max_size=300))
    @settings(max_examples=60)
    def test_never_negative_never_leaks(self, operations):
        isrb = Isrb(entries=8)
        live_refs = 0  # extra references we created and not yet removed
        for operation in operations:
            if operation == "share":
                if isrb.share(7):
                    live_refs += 1
            elif operation == "deref" and isrb.is_shared(7):
                isrb.dereference(7)
            elif operation == "unshare" and isrb.is_shared(7):
                entry = isrb.entry(7)
                if entry is not None and entry.referenced > 0:
                    isrb.unshare(7)
                    live_refs -= 1
            entry = isrb.entry(7)
            if entry is not None:
                assert entry.referenced >= 0
                assert entry.committed >= 0
        assert isrb.occupancy <= 8


class TestFifoHistoryProperties:
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=2,
                    max_size=200))
    @settings(max_examples=60)
    def test_find_matches_linear_scan(self, hashes):
        history = FifoHistory(entries=32)
        pushed = []
        for value_hash in hashes:
            # Oracle: youngest older producer with the same hash.
            expected = None
            for age, older in enumerate(reversed(pushed), start=1):
                if age > 32:
                    break
                if older == value_hash:
                    expected = age
                    break
            assert history.find(value_hash, max_distance=255) == expected
            history.push(value_hash)
            pushed.append(value_hash)

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=5,
                    max_size=100),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=40)
    def test_preferred_distance_only_returns_real_matches(
        self, hashes, preferred
    ):
        history = FifoHistory(entries=16)
        pushed = []
        for value_hash in hashes:
            found = history.find(
                value_hash, max_distance=255, preferred_distance=preferred
            )
            if found is not None:
                assert pushed[len(pushed) - found] == value_hash
            history.push(value_hash)
            pushed.append(value_hash)


class TestProducerWindowProperties:
    @given(st.lists(st.sampled_from(["push", "commit", "squash"]),
                    max_size=300))
    @settings(max_examples=60)
    def test_fifo_discipline(self, operations):
        window = ProducerWindow(capacity=16)
        model = []
        for operation in operations:
            if operation == "push" and len(model) < 16:
                op = object()
                window.push(op)
                model.append(op)
            elif operation == "commit" and model:
                window.retire_head(model.pop(0))
            elif operation == "squash" and model:
                window.squash_tail(model.pop())
            assert len(window) == len(model)
            for distance in range(1, len(model) + 1):
                assert window.producer_at(distance) is model[-distance]


class TestHistoryProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_folded_consistency_under_restores(self, bits):
        from repro.common.bitops import fold_bits

        history = GlobalHistory()
        history.register_fold(16, 7)
        snapshots = []
        for index, bit in enumerate(bits):
            if index % 7 == 3:
                snapshots.append((history.snapshot(), history.raw(16)))
            history.push(1 if bit else 0)
        # Every snapshot restores exactly.
        for snapshot, raw in snapshots:
            history.restore(snapshot)
            assert history.raw(16) == raw
            assert history.folded(16, 7) == fold_bits(raw, 16, 7)


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_streams_reproducible(self, seed):
        a, b = XorShift64(seed), XorShift64(seed)
        assert [a.next_u64() for _ in range(5)] == [
            b.next_u64() for _ in range(5)
        ]

    @given(st.integers(min_value=1, max_value=1 << 32))
    def test_next_below_in_range(self, bound):
        rng = XorShift64(1234)
        for _ in range(20):
            assert 0 <= rng.next_below(bound) < bound
