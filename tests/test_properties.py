"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.bitops import fold_hash, mask64, to_signed64, from_signed64
from repro.common.history import GlobalHistory
from repro.common.rng import XorShift64
from repro.core.fifo_history import FifoHistory
from repro.core.sharing import ProducerWindow
from repro.isa.registers import RegClass
from repro.rename.free_list import FreeList
from repro.rename.isrb import Isrb

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestBitopsProperties:
    @given(u64)
    def test_fold_hash_in_range(self, value):
        for bits in (8, 13, 14, 16):
            assert 0 <= fold_hash(value, bits) < (1 << bits)

    @given(u64)
    def test_fold_hash_deterministic(self, value):
        assert fold_hash(value, 14) == fold_hash(value, 14)

    @given(u64, u64)
    def test_equal_values_equal_hashes(self, a, b):
        # No false negatives: the hash never misses a true equality.
        if a == b:
            assert fold_hash(a, 14) == fold_hash(b, 14)

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_signed_round_trip(self, value):
        assert to_signed64(from_signed64(value)) == value

    @given(u64, u64)
    def test_mask64_addition_closure(self, a, b):
        assert 0 <= mask64(a + b) < (1 << 64)


class TestFreeListProperties:
    @given(st.lists(st.booleans(), max_size=200))
    def test_alloc_free_conservation(self, operations):
        free_list = FreeList(64, 64)
        allocated = []
        for do_alloc in operations:
            if do_alloc:
                preg = free_list.allocate(RegClass.INT)
                if preg is not None:
                    allocated.append(preg)
            elif allocated:
                free_list.release(allocated.pop())
        assert free_list.free_int + len(allocated) == 64
        assert len(set(allocated)) == len(allocated)  # no duplicates


class TestIsrbProperties:
    @given(st.lists(st.sampled_from(["share", "deref", "unshare"]),
                    max_size=300))
    @settings(max_examples=60)
    def test_never_negative_never_leaks(self, operations):
        isrb = Isrb(entries=8)
        live_refs = 0  # extra references we created and not yet removed
        for operation in operations:
            if operation == "share":
                if isrb.share(7):
                    live_refs += 1
            elif operation == "deref" and isrb.is_shared(7):
                isrb.dereference(7)
            elif operation == "unshare" and isrb.is_shared(7):
                entry = isrb.entry(7)
                if entry is not None and entry.referenced > 0:
                    isrb.unshare(7)
                    live_refs -= 1
            entry = isrb.entry(7)
            if entry is not None:
                assert entry.referenced >= 0
                assert entry.committed >= 0
        assert isrb.occupancy <= 8


class TestFifoHistoryProperties:
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=2,
                    max_size=200))
    @settings(max_examples=60)
    def test_find_matches_linear_scan(self, hashes):
        history = FifoHistory(entries=32)
        pushed = []
        for value_hash in hashes:
            # Oracle: youngest older producer with the same hash.
            expected = None
            for age, older in enumerate(reversed(pushed), start=1):
                if age > 32:
                    break
                if older == value_hash:
                    expected = age
                    break
            assert history.find(value_hash, max_distance=255) == expected
            history.push(value_hash)
            pushed.append(value_hash)

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=5,
                    max_size=100),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=40)
    def test_preferred_distance_only_returns_real_matches(
        self, hashes, preferred
    ):
        history = FifoHistory(entries=16)
        pushed = []
        for value_hash in hashes:
            found = history.find(
                value_hash, max_distance=255, preferred_distance=preferred
            )
            if found is not None:
                assert pushed[len(pushed) - found] == value_hash
            history.push(value_hash)
            pushed.append(value_hash)


class TestProducerWindowProperties:
    @given(st.lists(st.sampled_from(["push", "commit", "squash"]),
                    max_size=300))
    @settings(max_examples=60)
    def test_fifo_discipline(self, operations):
        window = ProducerWindow(capacity=16)
        model = []
        for operation in operations:
            if operation == "push" and len(model) < 16:
                op = object()
                window.push(op)
                model.append(op)
            elif operation == "commit" and model:
                window.retire_head(model.pop(0))
            elif operation == "squash" and model:
                window.squash_tail(model.pop())
            assert len(window) == len(model)
            for distance in range(1, len(model) + 1):
                assert window.producer_at(distance) is model[-distance]


class TestHistoryProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_folded_consistency_under_restores(self, bits):
        from repro.common.bitops import fold_bits

        history = GlobalHistory()
        history.register_fold(16, 7)
        snapshots = []
        for index, bit in enumerate(bits):
            if index % 7 == 3:
                snapshots.append((history.snapshot(), history.raw(16)))
            history.push(1 if bit else 0)
        # Every snapshot restores exactly.
        for snapshot, raw in snapshots:
            history.restore(snapshot)
            assert history.raw(16) == raw
            assert history.folded(16, 7) == fold_bits(raw, 16, 7)


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_streams_reproducible(self, seed):
        a, b = XorShift64(seed), XorShift64(seed)
        assert [a.next_u64() for _ in range(5)] == [
            b.next_u64() for _ in range(5)
        ]

    @given(st.integers(min_value=1, max_value=1 << 32))
    def test_next_below_in_range(self, bound):
        rng = XorShift64(1234)
        for _ in range(20):
            assert 0 <= rng.next_below(bound) < bound


# ---------------------------------------------------------------------------
# Packed-codec / columnar-trace properties
# ---------------------------------------------------------------------------

import pickle

import pytest

from repro.isa.instruction import DynInst, NO_ADDR, NO_REG
from repro.isa.opcodes import Opcode, OP_INFO
from repro.isa.registers import NUM_ARCH_REGS, XZR
from repro.workloads.columnar import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_CONDITIONAL,
    KIND_LOAD,
    KIND_RETURN,
    KIND_STORE,
    ColumnarTrace,
    pack_trace,
    unpack_trace,
)
from repro.workloads.trace import Trace

#: Every field a decoded DynInst carries (static + dynamic + derived).
DYN_FIELDS = [
    "seq", "pc", "opcode", "fu", "latency", "pipelined", "dest", "src1",
    "src2", "result", "addr", "is_load", "is_store", "is_branch",
    "is_conditional", "is_call", "is_return", "taken", "target_pc",
    "zero_idiom", "move", "line", "eligible",
]

_reg = st.integers(min_value=0, max_value=NUM_ARCH_REGS - 1)
_opt_reg = st.one_of(st.just(NO_REG), _reg)
_pc = st.integers(min_value=0, max_value=(1 << 20)).map(lambda w: w * 4)
_addr = st.one_of(st.just(NO_ADDR), st.integers(0, (1 << 40) - 1))
_target = st.one_of(st.just(-1), _pc)


@st.composite
def _dyn_fields(draw):
    """Field tuple for one random dynamic instruction.

    Deliberately wider than what the interpreter emits (any opcode may
    carry any register/flag combination) so the codec round-trip is
    pinned on raw field fidelity, not on interpreter invariants.
    """
    opcode = draw(st.sampled_from(list(Opcode)))
    return (
        opcode,
        draw(_pc),
        draw(_opt_reg),                 # dest (NO_REG / XZR included)
        draw(_opt_reg),                 # src1
        draw(_opt_reg),                 # src2
        draw(u64),                      # result
        draw(_addr),
        draw(st.booleans()),            # taken
        draw(_target),
        draw(st.booleans()),            # zero_idiom
        draw(st.booleans()),            # move
    )


def _build_trace(rows) -> Trace:
    instructions = [
        DynInst(
            seq=seq, pc=pc, opcode=opcode, dest=dest, src1=src1, src2=src2,
            result=result, addr=addr, taken=taken, target_pc=target_pc,
            zero_idiom=zero_idiom, move=move,
        )
        for seq, (opcode, pc, dest, src1, src2, result, addr, taken,
                  target_pc, zero_idiom, move) in enumerate(rows)
    ]
    return Trace("fuzz", instructions)


def _assert_rows_equal(expected, actual):
    for field_name in DYN_FIELDS:
        assert getattr(actual, field_name) == getattr(
            expected, field_name
        ), (expected.seq, field_name)


class TestCodecProperties:
    @given(st.lists(_dyn_fields(), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_round_trip_both_planes(self, rows):
        trace = _build_trace(rows)
        payload = pack_trace(trace, budget=len(trace))

        decoded, budget = unpack_trace(payload)
        assert budget == len(trace)
        columnar = ColumnarTrace.from_payload(payload)
        assert len(columnar) == len(trace) == len(decoded)
        for index, original in enumerate(trace.instructions):
            _assert_rows_equal(original, decoded[index])
            _assert_rows_equal(original, columnar.row(index))

    @given(st.lists(_dyn_fields(), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_column_reads_equal_dyninst_decode(self, rows):
        # Per-field *column* reads — what fetch and the warmer consume —
        # must agree with the decoded object for every index.
        trace = _build_trace(rows)
        columnar = ColumnarTrace.from_payload(
            pack_trace(trace, budget=len(trace))
        )
        for index, d in enumerate(trace.instructions):
            assert columnar.pcs[index] == d.pc
            assert columnar.lines[index] == d.line
            assert columnar.dests[index] == d.dest
            assert columnar.src1s[index] == d.src1
            assert columnar.src2s[index] == d.src2
            assert columnar.results[index] == d.result
            assert columnar.addrs[index] == d.addr
            assert columnar.targets[index] == d.target_pc
            assert columnar.eligibles[index] == d.eligible
            kind = columnar.kinds[index]
            assert bool(kind & KIND_BRANCH) == d.is_branch
            assert bool(kind & KIND_CONDITIONAL) == d.is_conditional
            assert bool(kind & KIND_CALL) == d.is_call
            assert bool(kind & KIND_RETURN) == d.is_return
            assert bool(kind & KIND_LOAD) == d.is_load
            assert bool(kind & KIND_STORE) == d.is_store
        assert columnar.result_producers == trace.result_producers

    @given(st.lists(_dyn_fields(), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_repack_and_pickle_stability(self, rows):
        # ColumnarTrace -> payload -> ColumnarTrace is lossless, and the
        # payload survives pickling (the store's wire path) unchanged.
        trace = _build_trace(rows)
        first = ColumnarTrace.from_payload(pack_trace(trace, 7))
        payload = pickle.loads(
            pickle.dumps(first.to_payload(7),
                         protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert payload["budget"] == 7
        second = ColumnarTrace.from_payload(payload)
        for index in range(len(trace)):
            _assert_rows_equal(trace.instructions[index], second.row(index))

    @given(st.lists(_dyn_fields(), min_size=2, max_size=20),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_truncated_column_is_rejected(self, rows, data):
        trace = _build_trace(rows)
        payload = pack_trace(trace, budget=len(trace))
        column = data.draw(st.sampled_from([
            "pc", "opcode", "dest", "src1", "src2", "result", "addr",
            "target_pc", "flags",
        ]))
        payload[column] = payload[column][:-1]
        with pytest.raises(ValueError):
            ColumnarTrace.from_payload(payload)
        with pytest.raises(ValueError):
            unpack_trace(payload)

    def test_unknown_opcode_is_rejected(self):
        trace = _build_trace([(Opcode.ADD, 4, 1, 2, 3, 9, NO_ADDR, False,
                               -1, False, False)])
        payload = pack_trace(trace, budget=1)
        payload["opcode"] = bytes([250])
        with pytest.raises(ValueError):
            ColumnarTrace.from_payload(payload)
        with pytest.raises(ValueError):
            unpack_trace(payload)


class TestCodecEdgeCases:
    """Directed cases the fuzz strategies only hit by chance."""

    def _single(self, **kwargs) -> DynInst:
        defaults = dict(seq=0, pc=64, opcode=Opcode.ADD, dest=1, src1=2,
                        src2=3, result=5, addr=NO_ADDR)
        defaults.update(kwargs)
        return DynInst(**defaults)

    def _round_trip(self, d: DynInst):
        payload = pack_trace(Trace("edge", [d]), budget=1)
        columnar = ColumnarTrace.from_payload(payload)
        decoded, _ = unpack_trace(payload)
        _assert_rows_equal(d, columnar.row(0))
        _assert_rows_equal(d, decoded[0])
        return columnar

    def test_no_reg_no_addr_sentinels(self):
        d = self._single(opcode=Opcode.NOP, dest=NO_REG, src1=NO_REG,
                         src2=NO_REG, result=0, addr=NO_ADDR)
        columnar = self._round_trip(d)
        assert columnar.dests[0] == NO_REG
        assert columnar.addrs[0] == NO_ADDR
        assert not columnar.eligibles[0]

    def test_xzr_dest_is_not_eligible(self):
        d = self._single(dest=XZR)
        columnar = self._round_trip(d)
        assert not columnar.eligibles[0]
        assert columnar.result_producers == 0

    @pytest.mark.parametrize("opcode", [Opcode.DIV, Opcode.FDIV])
    def test_non_pipelined_dividers(self, opcode):
        d = self._single(opcode=opcode)
        columnar = self._round_trip(d)
        row = columnar.row(0)
        assert row.pipelined is False
        assert row.latency == OP_INFO[opcode].latency
        assert columnar.kinds[0] & KIND_BRANCH == 0

    @pytest.mark.parametrize("opcode,taken,flags", [
        (Opcode.B, True, (False, False, False)),
        (Opcode.BEQ, True, (True, False, False)),
        (Opcode.BEQ, False, (True, False, False)),
        (Opcode.BL, True, (False, True, False)),
        (Opcode.RET, True, (False, False, True)),
    ])
    def test_branch_flag_combinations(self, opcode, taken, flags):
        conditional, call, is_return = flags
        d = self._single(
            opcode=opcode, dest=NO_REG, taken=taken,
            target_pc=256 if taken else -1,
        )
        columnar = self._round_trip(d)
        kind = columnar.kinds[0]
        assert kind & KIND_BRANCH
        assert bool(kind & KIND_CONDITIONAL) == conditional
        assert bool(kind & KIND_CALL) == call
        assert bool(kind & KIND_RETURN) == is_return
        row = columnar.row(0)
        assert row.taken is taken
        assert row.target_pc == (256 if taken else -1)
        assert not columnar.eligibles[0]  # branches never share

    def test_extreme_results_and_addresses(self):
        d = self._single(result=(1 << 64) - 1, addr=(1 << 62) - 8,
                         opcode=Opcode.LDR)
        columnar = self._round_trip(d)
        assert columnar.results[0] == (1 << 64) - 1
        assert columnar.addrs[0] == (1 << 62) - 8
        assert columnar.kinds[0] & KIND_LOAD

    def test_interpreter_trace_round_trips(self):
        # A real committed-path trace (every instruction class the
        # benchmarks emit) through the full wire path.
        from repro.workloads.spec2006 import generate_trace

        trace = generate_trace("gcc", 2000, seed=3)
        columnar = ColumnarTrace.from_payload(pack_trace(trace, 2000))
        for index, d in enumerate(trace.instructions):
            _assert_rows_equal(d, columnar.row(index))
