"""Fault matrix for the sharded sweep service (DESIGN.md §11).

Crash, hang, corrupt and tamper injected at each stage via the
deterministic fault plane; out-of-order and duplicate-tolerant merging;
quarantined-shard partial results with explicit holes; and the golden
property the whole layer exists for — a faulted sharded run merges to a
digest *identical* to the unfaulted in-process run.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.api.result import CellResult, RunResult
from repro.api.session import Session
from repro.api.spec import (
    ExperimentSpec,
    StoreSpec,
    WindowSpec,
    default_mechanisms,
)
from repro.service.faults import Fault, FaultPlan, FaultPlanError
from repro.service.server import ServiceError, SweepServer, request
from repro.service.shards import (
    ShardResult,
    ShardSpec,
    canonical_cells,
    merge_shards,
    plan_shards,
)
from repro.service.supervisor import ShardedSweepResult, ShardSupervisor
from repro.service.worker import execute_shard, shard_process_main


def tiny_spec(**overrides) -> ExperimentSpec:
    settings = dict(
        benchmarks=("mcf", "dealII"),
        mechanisms=default_mechanisms(),
        seeds=(1,),
        window=WindowSpec(warmup=128, measure=512),
        store=StoreSpec(enabled=False),
    )
    settings.update(overrides)
    return ExperimentSpec(**settings)


def fast_supervisor(**overrides) -> ShardSupervisor:
    settings = dict(
        backoff_base=0.01, backoff_cap=0.05, deadline=60.0,
        poll_interval=0.005, faults=FaultPlan(),
    )
    settings.update(overrides)
    return ShardSupervisor(**settings)


@pytest.fixture(scope="module")
def reference() -> RunResult:
    """The unfaulted in-process artifact every sharded run must match."""
    spec = tiny_spec()
    return Session.for_spec(spec).run(spec)


# ---------------------------------------------------------------------------
# Fault plan
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_render_round_trip(self):
        plan = FaultPlan.parse("crash:0, corrupt:1:2 ,hang:3:*")
        assert plan.faults == (
            Fault("crash", 0, 0), Fault("corrupt", 1, 2), Fault("hang", 3, -1),
        )
        assert FaultPlan.parse(plan.render()) == plan

    def test_empty_and_none(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("  ")
        assert FaultPlan.parse("").fault_for(0, 0) is None

    def test_fault_for_semantics(self):
        plan = FaultPlan.parse("crash:0,tamper:1:1,hang:2:*")
        assert plan.fault_for(0, 0) == "crash"
        assert plan.fault_for(0, 1) is None  # attempt defaults to 0 only
        assert plan.fault_for(1, 0) is None
        assert plan.fault_for(1, 1) == "tamper"
        for attempt in range(5):
            assert plan.fault_for(2, attempt) == "hang"  # poison

    @pytest.mark.parametrize("text", [
        "explode:0", "crash", "crash:x", "crash:0:y", "crash:-1", "a:b:c:d",
    ])
    def test_bad_entries_rejected(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)


# ---------------------------------------------------------------------------
# Planning and shard artifacts
# ---------------------------------------------------------------------------


class TestShardPlanning:
    def test_plan_partitions_grid_exactly(self):
        spec = tiny_spec(seeds=(1, 2))
        shards = plan_shards(spec, 2)
        assert [shard.index for shard in shards] == [0, 1]
        assert all(shard.total == len(shards) for shard in shards)
        union = [ref for shard in shards for ref in shard.cells]
        assert sorted(union) == sorted(canonical_cells(spec))
        assert len(set(union)) == len(union)

    def test_plan_keeps_benchmark_locality(self):
        shards = plan_shards(tiny_spec(seeds=(1, 2)), 2)
        for shard in shards:
            assert len({benchmark for benchmark, _, _ in shard.cells}) == 1

    def test_plan_is_deterministic(self):
        spec = tiny_spec()
        first = plan_shards(spec, 2)
        second = plan_shards(spec, 2)
        assert [s.cells for s in first] == [s.cells for s in second]

    def test_plan_caps_at_grid_size(self):
        spec = tiny_spec()  # 4 cells
        shards = plan_shards(spec, 16)
        assert len(shards) == spec.cells
        assert all(len(shard.cells) == 1 for shard in shards)

    def test_plan_rejects_degenerate_counts(self):
        with pytest.raises(ValueError):
            plan_shards(tiny_spec(), 1)

    def test_shard_spec_json_round_trip(self):
        shard = plan_shards(tiny_spec(), 2)[0]
        clone = ShardSpec.from_json(shard.to_json())
        assert clone == shard
        assert clone.fingerprint == shard.spec.fingerprint()

    def test_shard_spec_validates_cells(self):
        spec = tiny_spec()
        with pytest.raises(ValueError):
            ShardSpec(spec=spec, index=0, total=1, cells=())
        with pytest.raises(ValueError):
            ShardSpec(spec=spec, index=0, total=1,
                      cells=(("nonexistent", 0, 1),))
        with pytest.raises(ValueError):
            ShardSpec(spec=spec, index=0, total=1, cells=(("mcf", 9, 1),))
        with pytest.raises(ValueError):
            ShardSpec(spec=spec, index=0, total=1,
                      cells=(("mcf", 0, 1), ("mcf", 0, 1)))


class TestShardArtifacts:
    def test_round_trip_and_digest(self):
        shard = plan_shards(tiny_spec(), 2)[0]
        result = execute_shard(shard)
        clone = ShardResult.from_json(result.to_json())
        assert clone.digest() == result.digest()
        assert [c.to_dict() for c in clone.cells] == \
            [c.to_dict() for c in result.cells]

    def test_truncated_artifact_rejected(self):
        shard = plan_shards(tiny_spec(), 2)[0]
        text = execute_shard(shard).to_json()
        with pytest.raises(ValueError):
            ShardResult.from_json(text[: len(text) // 2])

    def test_tampered_stats_rejected(self):
        shard = plan_shards(tiny_spec(), 2)[0]
        payload = json.loads(execute_shard(shard).to_json())
        payload["cells"][0]["stats"]["committed"] += 1
        with pytest.raises(ValueError, match="digest"):
            ShardResult.from_dict(payload)

    def test_missing_digest_rejected(self):
        shard = plan_shards(tiny_spec(), 2)[0]
        payload = json.loads(execute_shard(shard).to_json())
        del payload["digest"]
        with pytest.raises(ValueError, match="no digest"):
            ShardResult.from_dict(payload)


# ---------------------------------------------------------------------------
# Merge
# ---------------------------------------------------------------------------


class TestMerge:
    def test_out_of_order_merge_is_deterministic(self, reference):
        spec = tiny_spec()
        shards = plan_shards(spec, 4)
        results = [execute_shard(shard) for shard in shards]
        forward, holes_f = merge_shards(spec, results)
        backward, holes_b = merge_shards(spec, list(reversed(results)))
        assert holes_f == holes_b == ()
        assert forward.digest() == backward.digest() == reference.digest()
        # Cell *order* is canonical too, not just the sorted digest.
        assert [c.to_dict() for c in forward.cells] == \
            [c.to_dict() for c in backward.cells]

    def test_merge_reports_holes(self):
        spec = tiny_spec()
        shards = plan_shards(spec, 2)
        merged, holes = merge_shards(spec, [execute_shard(shards[0])])
        assert holes == tuple(shards[1].cell_ids())
        assert len(merged.cells) == len(shards[0].cells)

    def test_merge_rejects_foreign_fingerprint(self):
        spec = tiny_spec()
        result = execute_shard(plan_shards(spec, 2)[0])
        result.fingerprint = "0" * 16
        with pytest.raises(ValueError, match="foreign"):
            merge_shards(spec, [result])

    def test_merge_rejects_disagreeing_duplicates(self):
        spec = tiny_spec()
        shard = plan_shards(spec, 2)[0]
        first = execute_shard(shard)
        second = execute_shard(shard)
        tampered = CellResult.from_dict(second.cells[0].to_dict())
        tampered.stats.committed += 1
        second.cells[0] = tampered
        with pytest.raises(ValueError, match="disagree"):
            merge_shards(spec, [first, second])

    def test_merge_tolerates_agreeing_duplicates(self, reference):
        spec = tiny_spec()
        shards = plan_shards(spec, 2)
        results = [execute_shard(shard) for shard in shards]
        merged, holes = merge_shards(spec, results + [results[0]])
        assert holes == ()
        assert merged.digest() == reference.digest()


# ---------------------------------------------------------------------------
# Supervisor: the fault matrix
# ---------------------------------------------------------------------------


class TestSupervisor:
    def test_unfaulted_sharded_matches_in_process(self, reference):
        outcome = fast_supervisor().run(tiny_spec(), shards=2)
        assert outcome.mode == "sharded"
        assert outcome.complete
        assert outcome.attempts == {0: 1, 1: 1}
        assert outcome.digest() == reference.digest()

    def test_worker_crash_is_retried(self, reference):
        supervisor = fast_supervisor(faults="crash:0")
        outcome = supervisor.run(tiny_spec(), shards=2)
        assert outcome.complete
        assert outcome.attempts[0] == 2
        assert any("worker died" in line for line in outcome.failures)
        assert outcome.digest() == reference.digest()

    def test_hung_worker_is_killed_and_retried(self, reference):
        supervisor = fast_supervisor(faults="hang:1", deadline=1.0)
        outcome = supervisor.run(tiny_spec(), shards=2)
        assert outcome.complete
        assert outcome.attempts[1] == 2
        assert any("deadline exceeded" in line for line in outcome.failures)
        assert outcome.digest() == reference.digest()

    def test_corrupt_artifact_is_rejected_and_rerun(self, reference):
        supervisor = fast_supervisor(faults="corrupt:0")
        outcome = supervisor.run(tiny_spec(), shards=2)
        assert outcome.complete
        assert outcome.attempts[0] == 2
        assert any("rejected" in line for line in outcome.failures)
        assert outcome.digest() == reference.digest()

    def test_tampered_artifact_is_rejected_and_rerun(self, reference):
        supervisor = fast_supervisor(faults="tamper:1")
        outcome = supervisor.run(tiny_spec(), shards=2)
        assert outcome.complete
        assert outcome.attempts[1] == 2
        assert any("digest" in line for line in outcome.failures)
        assert outcome.digest() == reference.digest()

    def test_golden_faulted_digest_equals_in_process(self, reference):
        """The acceptance criterion: crash + corrupt + hang injected,
        merged digest still identical to the unfaulted in-process run."""
        supervisor = fast_supervisor(
            faults="crash:0,corrupt:1,hang:0:1", deadline=1.5,
        )
        outcome = supervisor.run(tiny_spec(), shards=2)
        assert outcome.complete
        # Shard 0: crash then hang then success = 3 attempts.
        assert outcome.attempts == {0: 3, 1: 2}
        assert outcome.digest() == reference.digest()

    def test_poison_shard_is_quarantined_with_explicit_holes(self):
        spec = tiny_spec()
        supervisor = fast_supervisor(faults="crash:0:*", max_attempts=2)
        outcome = supervisor.run(spec, shards=2)  # must not raise
        assert not outcome.complete
        assert outcome.quarantined == (0,)
        assert outcome.attempts[0] == 2
        shard0 = plan_shards(spec, 2)[0]
        assert outcome.holes == tuple(shard0.cell_ids())
        # The healthy shard's cells all arrived.
        present = {
            (cell.benchmark, cell.mechanism, cell.seed)
            for cell in outcome.result.cells
        }
        assert present == set(plan_shards(spec, 2)[1].cell_ids())

    def test_partial_result_round_trips_with_holes(self, tmp_path):
        supervisor = fast_supervisor(faults="crash:0:*", max_attempts=2)
        outcome = supervisor.run(tiny_spec(), shards=2)
        clone = ShardedSweepResult.from_dict(
            json.loads(json.dumps(outcome.to_dict()))
        )
        assert clone.holes == outcome.holes
        assert clone.quarantined == outcome.quarantined
        assert clone.attempts == outcome.attempts
        assert clone.digest() == outcome.digest()
        # The partial RunResult is itself a valid, reloadable artifact.
        path = tmp_path / "partial.json"
        outcome.result.save(path)
        assert RunResult.load(path).digest() == outcome.digest()

    def test_degrades_to_in_process_for_small_requests(self, reference):
        supervisor = fast_supervisor()
        for shards in (0, 1):
            outcome = supervisor.run(tiny_spec(), shards=shards)
            assert outcome.mode == "in-process"
            assert outcome.complete
            assert outcome.digest() == reference.digest()

    def test_degrades_when_no_workers_available(self, reference):
        supervisor = fast_supervisor(max_workers=0)
        outcome = supervisor.run(tiny_spec(), shards=2)
        assert outcome.mode == "in-process"
        assert outcome.digest() == reference.digest()

    def test_session_run_sharded_front_door(self, reference):
        spec = tiny_spec(shards=2)
        outcome = Session.for_spec(spec).run_sharded(
            spec, supervisor=fast_supervisor(faults="crash:1")
        )
        assert outcome.mode == "sharded"
        assert outcome.digest() == reference.digest()

    def test_more_shards_than_cells(self, reference):
        outcome = fast_supervisor().run(tiny_spec(), shards=32)
        assert outcome.complete
        assert len(outcome.attempts) == 4  # capped at the grid size
        assert outcome.digest() == reference.digest()


# ---------------------------------------------------------------------------
# Worker entry point
# ---------------------------------------------------------------------------


class TestWorkerEntry:
    def test_writes_verifiable_artifact(self, tmp_path):
        shard = plan_shards(tiny_spec(), 2)[1]
        out = tmp_path / "shard.json"
        shard_process_main(shard.to_json(), str(out), None)
        result = ShardResult.from_json(out.read_text())
        assert result.index == shard.index
        assert {(c.benchmark, c.mechanism, c.seed) for c in result.cells} \
            == set(shard.cell_ids())

    def test_corrupt_fault_produces_rejected_artifact(self, tmp_path):
        shard = plan_shards(tiny_spec(), 2)[0]
        out = tmp_path / "shard.json"
        shard_process_main(shard.to_json(), str(out), "corrupt")
        with pytest.raises(ValueError):
            ShardResult.from_json(out.read_text())

    def test_tamper_fault_produces_digest_mismatch(self, tmp_path):
        shard = plan_shards(tiny_spec(), 2)[0]
        out = tmp_path / "shard.json"
        shard_process_main(shard.to_json(), str(out), "tamper")
        with pytest.raises(ValueError, match="digest"):
            ShardResult.from_json(out.read_text())


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class ServerThread:
    """A SweepServer on a background thread, for client round trips."""

    def __init__(self, socket_path, **supervisor_overrides):
        self.socket_path = socket_path
        self.server = SweepServer(
            socket_path, supervisor=fast_supervisor(**supervisor_overrides)
        )
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.server.serve())
        except asyncio.CancelledError:
            pass
        finally:
            self.loop.close()

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while not self.socket_path.exists():
            if time.monotonic() > deadline:
                raise RuntimeError("server socket never appeared")
            time.sleep(0.01)
        return self

    def __exit__(self, *exc_info):
        def cancel_all():
            for task in asyncio.all_tasks(self.loop):
                task.cancel()
        self.loop.call_soon_threadsafe(cancel_all)
        self.thread.join(timeout=10.0)


class TestServer:
    def test_served_sweep_matches_in_process(self, tmp_path, reference):
        with ServerThread(tmp_path / "repro.sock") as served:
            outcome = request(tiny_spec(), served.socket_path, shards=2)
            assert outcome.mode == "sharded"
            assert outcome.digest() == reference.digest()
            # No explicit shard count: the spec's own (0) rules —
            # graceful in-process degradation, same digest.
            plain = request(tiny_spec(), served.socket_path)
            assert plain.mode == "in-process"
            assert plain.digest() == reference.digest()
            assert served.server.requests_served == 2

    def test_served_faults_survive(self, tmp_path, reference):
        with ServerThread(
            tmp_path / "repro.sock", faults="crash:0,corrupt:1"
        ) as served:
            outcome = request(tiny_spec(), served.socket_path, shards=2)
            assert outcome.complete
            assert outcome.attempts == {0: 2, 1: 2}
            assert outcome.digest() == reference.digest()

    def test_malformed_request_gets_error_not_crash(self, tmp_path):
        import socket as socketlib

        with ServerThread(tmp_path / "repro.sock") as served:
            with socketlib.socket(socketlib.AF_UNIX) as sock:
                sock.settimeout(10.0)
                sock.connect(str(served.socket_path))
                sock.sendall(b'{"not a spec": true}\n')
                reply = json.loads(sock.recv(1 << 20).decode())
            assert reply["ok"] is False
            assert "spec" in reply["error"]
            # The server survived: a good request still works.
            outcome = request(tiny_spec(), served.socket_path)
            assert outcome.complete

    def test_client_raises_service_error(self, tmp_path):
        with ServerThread(tmp_path / "repro.sock") as served:
            bad = tiny_spec().to_dict()
            bad["$dc"] = "repro.api.spec:WindowSpec"  # decodes wrong type
            import socket as socketlib

            with socketlib.socket(socketlib.AF_UNIX) as sock:
                sock.settimeout(10.0)
                sock.connect(str(served.socket_path))
                sock.sendall(
                    (json.dumps({"spec": bad}) + "\n").encode()
                )
                reply = json.loads(sock.recv(1 << 20).decode())
            assert reply["ok"] is False

    def test_request_helper_raises_on_error(self, tmp_path):
        import socket as socketlib

        path = tmp_path / "fake.sock"
        server_sock = socketlib.socket(socketlib.AF_UNIX)
        server_sock.bind(str(path))
        server_sock.listen(1)

        def fake_server():
            conn, _ = server_sock.accept()
            with conn:
                conn.recv(1 << 20)
                conn.sendall(b'{"ok": false, "error": "boom"}\n')

        thread = threading.Thread(target=fake_server, daemon=True)
        thread.start()
        try:
            with pytest.raises(ServiceError, match="boom"):
                request(tiny_spec(), path)
            thread.join(timeout=10.0)
        finally:
            server_sock.close()


# ---------------------------------------------------------------------------
# Environment front door
# ---------------------------------------------------------------------------


class TestServiceEnvironment:
    def test_new_variables_are_known(self, monkeypatch):
        import warnings

        from repro.api import env as api_env

        monkeypatch.setenv("REPRO_SHARDS", "4")
        monkeypatch.setenv("REPRO_FAULTS", "crash:0")
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "7.5")
        with warnings.catch_warnings():
            warnings.simplefilter("error", api_env.UnknownReproVariable)
            assert api_env.warn_unknown_vars() == []

    def test_typed_readers(self, monkeypatch):
        from repro.api import env as api_env

        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_SHARD_TIMEOUT", raising=False)
        assert api_env.shards_from_env() == 0
        assert api_env.faults_from_env() is None
        assert api_env.shard_timeout_from_env() == 120.0
        monkeypatch.setenv("REPRO_SHARDS", "4")
        monkeypatch.setenv("REPRO_FAULTS", "hang:2:*")
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "7.5")
        assert api_env.shards_from_env() == 4
        assert api_env.faults_from_env() == "hang:2:*"
        assert api_env.shard_timeout_from_env() == 7.5

    def test_spec_overlay_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert ExperimentSpec.from_env(benchmarks=["mcf"]).shards == 4
        # Explicit argument beats the environment.
        assert ExperimentSpec.from_env(
            benchmarks=["mcf"], shards=2
        ).shards == 2
        monkeypatch.delenv("REPRO_SHARDS")
        assert ExperimentSpec.from_env(benchmarks=["mcf"]).shards == 0

    def test_shards_survive_spec_json_and_stay_out_of_fingerprint(self):
        spec = tiny_spec(shards=3)
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone.shards == 3
        assert spec.fingerprint() == tiny_spec().fingerprint()

    def test_supervisor_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:1")
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "9.0")
        supervisor = ShardSupervisor()
        assert supervisor.deadline == 9.0
        assert supervisor.faults.fault_for(1, 0) == "crash"
        # Explicit constructor arguments beat the environment.
        explicit = ShardSupervisor(deadline=3.0, faults="hang:0")
        assert explicit.deadline == 3.0
        assert explicit.faults.fault_for(0, 0) == "hang"

    def test_spec_rejects_negative_shards(self):
        with pytest.raises(ValueError, match="shards"):
            tiny_spec(shards=-1)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestServiceCli:
    def test_sweep_shards_writes_identical_artifact(
        self, tmp_path, capsys, reference
    ):
        from repro.api.cli import main

        artifact = tmp_path / "sharded.json"
        code = main([
            "sweep", "--benchmark", "mcf", "--benchmark", "dealII",
            "--warmup", "128", "--measure", "512",
            "--shards", "2", "--json", str(artifact),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded over 2 shard(s)" in out
        assert RunResult.load(artifact).digest() == reference.digest()

    def test_sweep_smoke_shards_gate(self, capsys, monkeypatch):
        from repro.api.cli import main

        monkeypatch.setenv("REPRO_FAULTS", "crash:0,corrupt:1")
        assert main(["sweep", "--smoke", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "sharded smoke" in out and "== in-process" in out

    def test_serve_once_round_trip(self, tmp_path, reference):
        from repro.api.cli import main

        socket_path = tmp_path / "serve.sock"
        outcome_box = {}

        def client():
            deadline = time.monotonic() + 30.0
            while not socket_path.exists():
                if time.monotonic() > deadline:
                    return
                time.sleep(0.01)
            outcome_box["outcome"] = request(
                tiny_spec(), socket_path, shards=2
            )

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        assert main(["serve", "--socket", str(socket_path), "--once"]) == 0
        thread.join(timeout=30.0)
        assert outcome_box["outcome"].digest() == reference.digest()
        assert not socket_path.exists()  # socket cleaned up on exit


# ---------------------------------------------------------------------------
# Hardened parallel prefill (satellite: no stall on hung/dead workers)
# ---------------------------------------------------------------------------


def _hang_mcf_task(payload):
    """Module-level (fork-picklable) wrapper: hang on mcf's task."""
    if payload[2] == "mcf":
        time.sleep(600)
    return _real_run_cells_task(payload)


def _crash_mcf_task(payload):
    import os

    if payload[2] == "mcf":
        os._exit(17)
    return _real_run_cells_task(payload)


from repro.harness.sweep import _run_cells_task as _real_run_cells_task


class TestPrefillHardening:
    def _sequential(self):
        from repro.harness.sweep import SweepEngine

        engine = SweepEngine()
        return engine.sweep(
            ["mcf", "dealII"], list(default_mechanisms()),
            seeds=[1], warmup=128, measure=512, workers=1,
        )

    def _parallel_with(self, monkeypatch, task):
        from repro.harness import sweep as sweep_module

        monkeypatch.setattr(sweep_module, "_run_cells_task", task)
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "2.0")
        engine = sweep_module.SweepEngine()
        return engine.sweep(
            ["mcf", "dealII"], list(default_mechanisms()),
            seeds=[1], warmup=128, measure=512, workers=2,
        )

    def test_hung_pool_worker_no_longer_stalls_the_sweep(self, monkeypatch):
        from helpers import stats_dict

        sequential = self._sequential()
        parallel = self._parallel_with(monkeypatch, _hang_mcf_task)
        assert set(parallel) == set(sequential)
        for key in sequential:
            for a, b in zip(sequential[key], parallel[key]):
                assert stats_dict(a.stats) == stats_dict(b.stats)

    def test_dead_pool_worker_is_redispatched(self, monkeypatch):
        from helpers import stats_dict

        sequential = self._sequential()
        parallel = self._parallel_with(monkeypatch, _crash_mcf_task)
        for key in sequential:
            for a, b in zip(sequential[key], parallel[key]):
                assert stats_dict(a.stats) == stats_dict(b.stats)


# ---------------------------------------------------------------------------
# Crash-safe artifact writes (satellite)
# ---------------------------------------------------------------------------


class TestAtomicWrites:
    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        from repro.common.atomicio import atomic_write_text

        target = tmp_path / "artifact.json"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]

    def test_failed_write_preserves_existing_file(self, tmp_path,
                                                  monkeypatch):
        from repro.common import atomicio

        target = tmp_path / "artifact.json"
        target.write_text("precious")

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomicio.os, "replace", explode)
        with pytest.raises(OSError):
            atomicio.atomic_write_text(target, "torn")
        assert target.read_text() == "precious"
        # The temp file was cleaned up, not leaked.
        assert list(tmp_path.iterdir()) == [target]

    def test_run_result_save_is_atomic(self, tmp_path, reference,
                                       monkeypatch):
        from repro.common import atomicio

        path = tmp_path / "result.json"
        reference.save(path)
        loaded = RunResult.load(path)
        assert loaded.digest() == reference.digest()

        # An interrupted re-save leaves the previous artifact intact.
        def explode(src, dst):
            raise OSError("interrupted")

        monkeypatch.setattr(atomicio.os, "replace", explode)
        with pytest.raises(OSError):
            reference.save(path)
        assert RunResult.load(path).digest() == reference.digest()
