"""Tests for rename structures (free list, map, ISRB, eliminations) and
backend resources (ROB, IQ, LSQ, ports, store sets)."""

import pytest

from repro.backend.fu import IssuePorts, PortConfig
from repro.backend.iq import IssueQueue
from repro.backend.lsq import LoadStoreQueues
from repro.backend.rob import ReorderBuffer
from repro.backend.store_sets import StoreSets
from repro.isa.instruction import DynInst
from repro.isa.opcodes import FuClass, Opcode
from repro.isa.registers import RegClass, XZR, x
from repro.rename.free_list import FreeList, FreeListError
from repro.rename.isrb import Isrb
from repro.rename.map_table import RenameMap
from repro.rename.move_elim import MoveEliminator
from repro.rename.zero_idiom import ZeroIdiomEliminator


class TestFreeList:
    def test_pools_disjoint(self):
        fl = FreeList(64, 64)
        int_preg = fl.allocate(RegClass.INT)
        fp_preg = fl.allocate(RegClass.FP)
        assert int_preg < 64 <= fp_preg

    def test_exhaustion_returns_none(self):
        fl = FreeList(33, 33)
        for _ in range(33):
            fl.allocate(RegClass.INT)
        assert fl.allocate(RegClass.INT) is None

    def test_release_recycles(self):
        fl = FreeList(64, 64)
        preg = fl.allocate(RegClass.INT)
        fl.release(preg)
        assert fl.free_int == 64

    def test_double_free_rejected(self):
        fl = FreeList(64, 64)
        preg = fl.allocate(RegClass.INT)
        fl.release(preg)
        with pytest.raises(FreeListError):
            fl.release(preg)

    def test_zero_preg_never_freed(self):
        fl = FreeList(64, 64)
        with pytest.raises(FreeListError):
            fl.release(fl.zero_preg)


class TestRenameMap:
    def test_initial_state_consumes_pregs(self):
        fl = FreeList(235, 235)
        RenameMap(fl)
        assert fl.free_int == 235 - 31  # XZR does not consume a preg
        assert fl.free_fp == 235 - 32

    def test_xzr_maps_to_zero_preg(self):
        fl = FreeList(235, 235)
        rename_map = RenameMap(fl)
        assert rename_map.lookup(XZR) == fl.zero_preg

    def test_rename_and_undo(self):
        fl = FreeList(235, 235)
        rename_map = RenameMap(fl)
        original = rename_map.lookup(x(3))
        new_preg = fl.allocate(RegClass.INT)
        old = rename_map.rename_dest(x(3), new_preg)
        assert old == original
        installed = rename_map.undo_rename(x(3), old)
        assert installed == new_preg
        assert rename_map.lookup(x(3)) == original

    def test_cannot_rename_xzr(self):
        fl = FreeList(235, 235)
        rename_map = RenameMap(fl)
        with pytest.raises(ValueError):
            rename_map.rename_dest(XZR, 5)

    def test_snapshot_restore(self):
        fl = FreeList(235, 235)
        rename_map = RenameMap(fl)
        snap = rename_map.snapshot()
        rename_map.rename_dest(x(1), fl.allocate(RegClass.INT))
        rename_map.restore(snap)
        assert rename_map.snapshot() == snap


class TestIsrb:
    def test_share_then_dereference_lifecycle(self):
        isrb = Isrb(entries=4)
        assert isrb.share(10)
        # First owner dies: one committed de-reference, entry survives.
        assert isrb.dereference(10) == "kept"
        # Second owner dies: committed exceeds referenced -> free.
        assert isrb.dereference(10) == "freed"
        assert not isrb.is_shared(10)

    def test_untracked_dereference(self):
        isrb = Isrb()
        assert isrb.dereference(99) == "untracked"

    def test_multiple_sharers(self):
        isrb = Isrb()
        isrb.share(7), isrb.share(7)  # three owners total
        assert isrb.dereference(7) == "kept"
        assert isrb.dereference(7) == "kept"
        assert isrb.dereference(7) == "freed"

    def test_capacity_rejection(self):
        isrb = Isrb(entries=1)
        assert isrb.share(1)
        assert not isrb.share(2)
        assert isrb.share_rejections == 1

    def test_counter_overflow_rejection(self):
        isrb = Isrb(entries=2, counter_bits=2)  # max 3
        for _ in range(3):
            assert isrb.share(5)
        assert not isrb.share(5)

    def test_unshare_squash_path(self):
        isrb = Isrb()
        isrb.share(3)
        # Squash before any owner died: entry simply drops, no free.
        assert not isrb.unshare(3)
        assert not isrb.is_shared(3)

    def test_unshare_after_commit_deref_frees(self):
        isrb = Isrb()
        isrb.share(4)
        assert isrb.dereference(4) == "kept"
        # Now the sharer squashes: committed(1) > referenced(0) -> free.
        assert isrb.unshare(4)

    def test_unshare_untracked_raises(self):
        with pytest.raises(KeyError):
            Isrb().unshare(42)

    def test_storage_is_paper_63_bytes(self):
        assert Isrb(24, 6, 9).storage_report().total_bytes == 63.0


class TestEliminations:
    def test_move_elimination_shares_source(self):
        fl = FreeList(235, 235)
        rename_map = RenameMap(fl)
        isrb = Isrb()
        eliminator = MoveEliminator(rename_map, isrb)
        move = DynInst(0, 0x1000, Opcode.MOV, dest=x(2), src1=x(1),
                       result=5, move=True)
        shared = eliminator.try_eliminate(move)
        assert shared == rename_map.lookup(x(1))
        assert isrb.is_shared(shared)
        assert eliminator.eliminated == 1

    def test_move_elimination_respects_isrb_capacity(self):
        fl = FreeList(235, 235)
        rename_map = RenameMap(fl)
        isrb = Isrb(entries=1)
        isrb.share(200)  # fill
        eliminator = MoveEliminator(rename_map, isrb)
        move = DynInst(0, 0x1000, Opcode.MOV, dest=x(2), src1=x(1),
                       result=5, move=True)
        assert eliminator.try_eliminate(move) is None
        assert eliminator.rejected == 1

    def test_zero_idiom_elimination(self):
        eliminator = ZeroIdiomEliminator(zero_preg=470)
        idiom = DynInst(0, 0x1000, Opcode.EOR, dest=x(1), src1=x(2),
                        src2=x(2), result=0, zero_idiom=True)
        assert eliminator.try_eliminate(idiom) == 470
        normal = DynInst(1, 0x1004, Opcode.EOR, dest=x(1), src1=x(2),
                         src2=x(3), result=1)
        assert eliminator.try_eliminate(normal) is None


class TestRob:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        rob.push("a"), rob.push("b")
        assert rob.head() == "a" and rob.tail() == "b"
        assert rob.pop_head() == "a"
        assert rob.pop_tail() == "b"
        assert rob.empty

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.push(1), rob.push(2)
        assert rob.full
        with pytest.raises(OverflowError):
            rob.push(3)


class _IqEntry:
    """Minimal op: the IQ stores its position in ``iq_index``."""

    def __init__(self, value):
        self.value = value
        self.iq_index = -1


class TestIssueQueue:
    def test_capacity_and_removal(self):
        iq = IssueQueue(2)
        a, b, c = _IqEntry("a"), _IqEntry("b"), _IqEntry("c")
        iq.insert(a), iq.insert(b)
        assert iq.full
        with pytest.raises(OverflowError):
            iq.insert(c)
        iq.remove_issued([a])
        assert list(iq) == [b]

    def test_squash_predicate(self):
        iq = IssueQueue(8)
        entries = [_IqEntry(value) for value in range(5)]
        for entry in entries:
            iq.insert(entry)
        dropped = iq.squash(lambda e: e.value >= 3)
        assert dropped == 2
        assert list(iq) == entries[:3]


class _FakeMemOp:
    """Minimal stand-in carrying the attributes the LSQ reads."""

    def __init__(self, seq, addr, is_load):
        self.d = DynInst(
            seq, 0x1000 + seq * 4,
            Opcode.LDR if is_load else Opcode.STR,
            dest=x(1) if is_load else -1,
            src1=x(2), addr=addr,
        )
        self.executed = False
        self.issued = False
        self.complete_cycle = None


class TestLsq:
    def test_blocking_store(self):
        lsq = LoadStoreQueues()
        store = _FakeMemOp(1, 0x100, is_load=False)
        load = _FakeMemOp(2, 0x100, is_load=True)
        lsq.add_store(store), lsq.add_load(load)
        assert lsq.blocking_store(load) is store
        store.executed = True
        store.complete_cycle = 5
        assert lsq.blocking_store(load) is None
        assert lsq.forwarding_store(load, 10) is store

    def test_different_addresses_do_not_block(self):
        lsq = LoadStoreQueues()
        store = _FakeMemOp(1, 0x100, is_load=False)
        load = _FakeMemOp(2, 0x200, is_load=True)
        lsq.add_store(store), lsq.add_load(load)
        assert lsq.blocking_store(load) is None

    def test_younger_store_does_not_block(self):
        lsq = LoadStoreQueues()
        load = _FakeMemOp(1, 0x100, is_load=True)
        store = _FakeMemOp(2, 0x100, is_load=False)
        lsq.add_load(load), lsq.add_store(store)
        assert lsq.blocking_store(load) is None

    def test_violation_detection(self):
        lsq = LoadStoreQueues()
        store = _FakeMemOp(1, 0x300, is_load=False)
        load = _FakeMemOp(2, 0x300, is_load=True)
        lsq.add_store(store), lsq.add_load(load)
        load.issued = True
        violators = lsq.find_violations(store)
        assert violators == [load]
        assert lsq.violations == 1

    def test_squash_drops_young_entries(self):
        lsq = LoadStoreQueues()
        old = _FakeMemOp(1, 0x100, is_load=True)
        young = _FakeMemOp(9, 0x200, is_load=True)
        lsq.add_load(old), lsq.add_load(young)
        lsq.squash(min_seq=5)
        assert lsq.lq_occupancy == 1

    def test_capacity(self):
        lsq = LoadStoreQueues(lq_capacity=1, sq_capacity=1)
        lsq.add_load(_FakeMemOp(1, 0, True))
        assert lsq.lq_full
        with pytest.raises(OverflowError):
            lsq.add_load(_FakeMemOp(2, 0, True))


class TestIssuePorts:
    def test_alu_width(self):
        ports = IssuePorts(PortConfig())
        ports.new_cycle(0)
        granted = sum(
            ports.try_issue(FuClass.INT_ALU, 0) for _ in range(6)
        )
        assert granted == 4  # Table I: 4 ALUs

    def test_total_issue_width(self):
        ports = IssuePorts(PortConfig())
        ports.new_cycle(0)
        granted = 0
        for fu in (FuClass.INT_ALU,) * 4 + (FuClass.FP_ALU,) * 3 + (
            FuClass.MEM_LOAD,
        ) * 2:
            granted += ports.try_issue(fu, 0)
        assert granted == 8  # 8-issue cap

    def test_divider_not_pipelined(self):
        ports = IssuePorts(PortConfig())
        ports.new_cycle(0)
        assert ports.try_issue(FuClass.INT_DIV, 0)
        ports.new_cycle(1)
        assert not ports.try_issue(FuClass.INT_DIV, 1)  # busy 25 cycles
        ports.new_cycle(30)
        assert ports.try_issue(FuClass.INT_DIV, 30)

    def test_store_uses_store_port_first(self):
        ports = IssuePorts(PortConfig())
        ports.new_cycle(0)
        assert ports.try_issue(FuClass.MEM_STORE, 0)   # store-only port
        assert ports.try_issue(FuClass.MEM_LOAD, 0)
        assert ports.try_issue(FuClass.MEM_LOAD, 0)
        assert not ports.try_issue(FuClass.MEM_LOAD, 0)  # both ld ports used

    def test_validation_lock_fu_steals_load_port(self):
        ports = IssuePorts(PortConfig())
        ports.new_cycle(0)
        assert ports.try_issue_validation(FuClass.MEM_LOAD, 0, lock_fu=True)
        assert ports.validation_on_load_port == 1
        assert ports.try_issue(FuClass.MEM_LOAD, 0)
        assert not ports.try_issue(FuClass.MEM_LOAD, 0)

    def test_validation_any_fu_prefers_non_load(self):
        ports = IssuePorts(PortConfig())
        ports.new_cycle(0)
        assert ports.try_issue_validation(FuClass.MEM_LOAD, 0, lock_fu=False)
        assert ports.validation_on_load_port == 0  # used an ALU instead
        assert ports.try_issue(FuClass.MEM_LOAD, 0)
        assert ports.try_issue(FuClass.MEM_LOAD, 0)


class TestStoreSets:
    def test_untrained_imposes_no_dependency(self):
        sets = StoreSets()
        assert sets.load_dependency(0x1000) is None

    def test_violation_trains_dependency(self):
        sets = StoreSets()
        sets.train_violation(load_pc=0x1000, store_pc=0x2000)
        token = object()
        sets.store_dispatched(0x2000, token)
        assert sets.load_dependency(0x1000) is token

    def test_store_completion_clears_lfst(self):
        sets = StoreSets()
        sets.train_violation(0x1000, 0x2000)
        token = object()
        sets.store_dispatched(0x2000, token)
        sets.store_completed(0x2000, token)
        assert sets.load_dependency(0x1000) is None

    def test_set_merging(self):
        sets = StoreSets()
        sets.train_violation(0x1000, 0x2000)
        sets.train_violation(0x1000, 0x3000)  # merge second store in
        token = object()
        sets.store_dispatched(0x3000, token)
        assert sets.load_dependency(0x1000) is token

    def test_power_of_two_validation(self):
        with pytest.raises(ValueError):
            StoreSets(ssit_entries=1000)
