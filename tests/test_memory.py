"""Tests for the memory hierarchy: caches, MSHRs, prefetchers, DRAM, TLBs."""

import pytest

from repro.memory.cache import Cache, LINE_SHIFT
from repro.memory.dram import DramConfig, DramModel
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.memory.prefetcher import StreamPrefetcher, StridePrefetcher
from repro.memory.tlb import PAGE_SHIFT, Tlb


class TestCache:
    def make(self, size=1024, ways=2, latency=4, mshrs=4):
        return Cache("T", size, ways, latency, mshrs)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", 1024, 3, 1)  # lines not divisible by ways

    def test_hit_after_fill(self):
        cache = self.make()
        assert not cache.touch(5)
        cache.fill(5)
        assert cache.touch(5)

    def test_lru_eviction(self):
        cache = self.make(size=128, ways=1)  # 2 sets, direct mapped
        cache.fill(0)
        cache.fill(2)  # same set (even lines), evicts 0
        assert not cache.present(0)
        assert cache.present(2)

    def test_lru_order_respected(self):
        cache = self.make(size=256, ways=2)  # 2 sets, 2 ways
        cache.fill(0)
        cache.fill(2)
        cache.touch(0)       # 0 becomes MRU
        victim = cache.fill(4)
        assert victim == 2   # LRU way evicted

    def test_lookup_miss_then_pending_merge(self):
        cache = self.make()
        hit, delay = cache.lookup(9, cycle=0)
        assert not hit and delay == 0
        cache.start_miss(9, cycle=0, fill_latency=50)
        hit, delay = cache.lookup(9, cycle=10)
        assert hit and delay == 40  # merged onto the outstanding MSHR
        assert cache.stats.mshr_merges == 1

    def test_fill_completes_after_latency(self):
        cache = self.make()
        cache.lookup(9, 0)
        cache.start_miss(9, 0, 50)
        hit, delay = cache.lookup(9, 60)
        assert hit and delay == 0

    def test_mshr_full_stalls(self):
        cache = self.make(mshrs=1)
        cache.lookup(1, 0)
        cache.start_miss(1, 0, 100)
        cache.lookup(3, 0)
        stall = cache.start_miss(3, 0, 100)
        assert stall == 100  # waited for the single MSHR to free
        assert cache.stats.mshr_stalls == 1

    def test_dirty_tracking(self):
        cache = self.make()
        cache.fill(7, dirty=True)
        assert cache.is_dirty(7)
        cache2 = self.make(size=128, ways=1)
        cache2.fill(0, dirty=True)
        cache2.fill(2)  # evicts 0
        assert not cache2.is_dirty(0)


class TestStridePrefetcher:
    def test_detects_constant_stride(self):
        prefetcher = StridePrefetcher()
        issued = []
        for i in range(6):
            issued = prefetcher.observe(0x100, 0x8000 + i * 64)
        assert issued == [0x8000 + 6 * 64]

    def test_no_prefetch_on_random(self):
        prefetcher = StridePrefetcher()
        from repro.common.rng import XorShift64

        rng = XorShift64(1)
        total = 0
        for _ in range(100):
            total += len(prefetcher.observe(0x100, rng.next_u64() & 0xFFFFF8))
        assert total < 5

    def test_capacity_eviction(self):
        prefetcher = StridePrefetcher(entries=4)
        for pc in range(10):
            prefetcher.observe(pc << 2, 0x1000)
        assert len(prefetcher._table) <= 4


class TestStreamPrefetcher:
    def test_ascending_stream(self):
        prefetcher = StreamPrefetcher()
        line = 0x8000
        prefetcher.observe_miss(line << LINE_SHIFT)
        issued = prefetcher.observe_miss((line + 1) << LINE_SHIFT)
        assert issued == [(line + 2) << LINE_SHIFT]

    def test_stream_capacity(self):
        prefetcher = StreamPrefetcher(streams=2)
        for base in range(10):
            prefetcher.observe_miss((base * 1000) << LINE_SHIFT)
        assert len(prefetcher._streams) <= 2


class TestDram:
    def test_row_hit_faster_than_conflict(self):
        # Lines interleave across banks: same-bank neighbours are
        # total_banks lines apart.
        dram = DramModel(DramConfig())
        bank_stride = 64 * DramConfig().total_banks
        dram.access(0x0, 0)
        hit = dram.access(bank_stride, 10_000)  # same bank, same row
        conflict_addr = DramConfig().row_bytes * DramConfig().total_banks
        conflict = dram.access(conflict_addr, 20_000)  # same bank, new row
        assert hit < conflict
        assert dram.row_hits >= 1 and dram.row_conflicts >= 1

    def test_bank_queueing(self):
        bank_stride = 64 * DramConfig().total_banks
        dram = DramModel(DramConfig())
        dram.access(0x0, 0)
        queued = dram.access(bank_stride, 1)  # bank still busy
        free = DramModel(DramConfig())
        free.access(0x0, 0)
        unqueued = free.access(bank_stride, 10_000)
        assert queued > unqueued

    def test_min_latency_close_to_paper(self):
        # Table I: minimum read latency 36 ns.
        dram = DramModel(DramConfig())
        dram.access(0x0, 0)
        hit_latency = dram.access(64 * DramConfig().total_banks, 10_000)
        assert hit_latency == DramConfig().to_cycles(36.0)


class TestTlb:
    def test_hit_after_walk(self):
        tlb = Tlb(4)
        assert tlb.access(0x1000) == tlb.walk_penalty
        assert tlb.access(0x1008) == 0  # same page

    def test_capacity_and_lru(self):
        tlb = Tlb(2)
        tlb.access(0 << PAGE_SHIFT)
        tlb.access(1 << PAGE_SHIFT)
        tlb.access(0 << PAGE_SHIFT)      # refresh page 0
        tlb.access(2 << PAGE_SHIFT)      # evicts page 1
        assert tlb.access(0 << PAGE_SHIFT) == 0
        assert tlb.access(1 << PAGE_SHIFT) > 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Tlb(0)


class TestHierarchy:
    def test_l1_hit_latency(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load(0x100, 0x8000, 0)          # cold miss + TLB walk
        latency = hierarchy.load(0x100, 0x8000, 5000)
        assert latency == MemoryConfig().l1d_latency

    def test_miss_latency_ordering(self):
        config = MemoryConfig(enable_prefetch=False)
        hierarchy = MemoryHierarchy(config)
        cold = hierarchy.load(0x100, 0x10_0000, 0)
        warm = hierarchy.load(0x100, 0x10_0000, 100_000)
        assert cold > config.l3_latency  # went to DRAM
        assert warm == config.l1d_latency

    def test_l2_hit_after_l1_eviction(self):
        config = MemoryConfig(enable_prefetch=False)
        hierarchy = MemoryHierarchy(config)
        hierarchy.load(0x1, 0x0, 0)
        # Evict line 0 from L1 (32KB, 8 ways, 64 sets): fill the set.
        cycle = 10_000
        for way in range(9):
            hierarchy.load(0x1, way * 64 * 64, cycle)
            cycle += 1000
        latency = hierarchy.load(0x1, 0x0, cycle + 10_000)
        assert latency == config.l2_latency

    def test_stride_prefetch_hides_misses(self):
        with_prefetch = MemoryHierarchy(MemoryConfig(enable_prefetch=True))
        without = MemoryHierarchy(MemoryConfig(enable_prefetch=False))
        def total(hierarchy):
            cycle, out = 0, 0
            for i in range(200):
                out += hierarchy.load(0x42, 0x40_0000 + i * 64, cycle)
                cycle += 200
            return out
        assert total(with_prefetch) < total(without)

    def test_store_marks_dirty(self):
        hierarchy = MemoryHierarchy()
        hierarchy.store(0x1, 0x9000, 0)
        assert hierarchy.l1d.is_dirty(0x9000 >> LINE_SHIFT)

    def test_instruction_fetch_path(self):
        hierarchy = MemoryHierarchy()
        bubble = hierarchy.fetch(0x1000, 0)
        assert bubble > 0                       # cold
        assert hierarchy.fetch(0x1000, 100_000) == 0  # warm
