"""Sweep engine: cell memoisation, fingerprinting, runner integration."""

from __future__ import annotations

import dataclasses

from repro.harness.runner import ExperimentRunner
from repro.harness.sweep import (
    SweepEngine,
    mechanism_fingerprint,
    shared_engine,
)
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.simulator import Simulator
from repro.workloads.store import TraceStore


from helpers import stats_dict  # noqa: E402  (shared test helper)


def _engine() -> SweepEngine:
    return SweepEngine(simulator=Simulator(trace_store=None))


class TestFingerprint:
    def test_name_is_not_part_of_the_fingerprint(self):
        a = MechanismConfig.rsep_ideal()
        b = dataclasses.replace(a, name="renamed-rsep")
        assert mechanism_fingerprint(a) == mechanism_fingerprint(b)

    def test_settings_are(self):
        assert mechanism_fingerprint(
            MechanismConfig.rsep_ideal()
        ) != mechanism_fingerprint(MechanismConfig.rsep_realistic())
        assert mechanism_fingerprint(
            MechanismConfig.baseline()
        ) != mechanism_fingerprint(MechanismConfig.move_elimination())

    def test_equal_settings_under_different_presets_collide(self):
        # rsep_validation(IDEAL) with the default threshold is exactly
        # rsep_ideal() modulo its name: one simulation must serve both.
        from repro.core.validation import ValidationMode

        ideal = MechanismConfig.rsep_ideal()
        via_validation = MechanismConfig.rsep_validation(ValidationMode.IDEAL)
        assert mechanism_fingerprint(ideal) == mechanism_fingerprint(
            via_validation
        )


class TestCellMemo:
    def test_identical_cells_simulate_once(self):
        engine = _engine()
        kwargs = dict(seed=1, warmup=256, measure=1000)
        first = engine.run_cell("mcf", MechanismConfig.baseline(), **kwargs)
        second = engine.run_cell("mcf", MechanismConfig.baseline(), **kwargs)
        assert engine.cell_misses == 1
        assert engine.cell_hits == 1
        assert stats_dict(first.stats) == stats_dict(second.stats)
        # Copies, not aliases: callers cannot corrupt the memo.
        assert first.stats is not second.stats

    def test_memoised_result_equals_fresh_simulation(self):
        engine = _engine()
        kwargs = dict(seed=1, warmup=256, measure=1000)
        engine.run_cell("dealII", MechanismConfig.rsep_realistic(), **kwargs)
        memoised = engine.run_cell(
            "dealII", MechanismConfig.rsep_realistic(), **kwargs
        )
        fresh = Simulator(trace_store=None).run_benchmark(
            "dealII", MechanismConfig.rsep_realistic(),
            warmup=256, measure=1000, seed=1,
        )
        assert stats_dict(memoised.stats) == stats_dict(fresh.stats)

    def test_renamed_preset_hits_and_is_rebadged(self):
        engine = _engine()
        kwargs = dict(seed=1, warmup=256, measure=1000)
        engine.run_cell("mcf", MechanismConfig.rsep_ideal(), **kwargs)
        renamed = dataclasses.replace(
            MechanismConfig.rsep_ideal(), name="rsep-under-another-name"
        )
        result = engine.run_cell("mcf", renamed, **kwargs)
        assert engine.cell_misses == 1 and engine.cell_hits == 1
        assert result.mechanism == "rsep-under-another-name"

    def test_window_and_seed_are_part_of_the_key(self):
        engine = _engine()
        engine.run_cell("mcf", MechanismConfig.baseline(),
                        seed=1, warmup=256, measure=1000)
        engine.run_cell("mcf", MechanismConfig.baseline(),
                        seed=2, warmup=256, measure=1000)
        engine.run_cell("mcf", MechanismConfig.baseline(),
                        seed=1, warmup=256, measure=1500)
        assert engine.cell_misses == 3 and engine.cell_hits == 0


class TestSweep:
    def test_sweep_shape_and_memoisation(self):
        engine = _engine()
        mechanisms = [
            MechanismConfig.baseline(), MechanismConfig.rsep_realistic()
        ]
        results = engine.sweep(
            ["mcf", "dealII"], mechanisms,
            seeds=[1, 2], warmup=256, measure=1000,
        )
        assert set(results) == {
            ("mcf", "baseline"), ("mcf", "rsep-realistic"),
            ("dealII", "baseline"), ("dealII", "rsep-realistic"),
        }
        assert all(len(cell) == 2 for cell in results.values())
        assert engine.cell_misses == 8
        again = engine.sweep(
            ["mcf", "dealII"], mechanisms,
            seeds=[1, 2], warmup=256, measure=1000,
        )
        assert engine.cell_misses == 8  # everything memoised
        for key in results:
            for a, b in zip(results[key], again[key]):
                assert stats_dict(a.stats) == stats_dict(b.stats)

    def test_parallel_sweep_matches_sequential(self, tmp_path):
        mechanisms = [
            MechanismConfig.baseline(), MechanismConfig.rsep_realistic()
        ]
        kwargs = dict(seeds=[1, 2], warmup=256, measure=1000)
        sequential = _engine().sweep(["mcf", "dealII"], mechanisms, **kwargs)
        parallel_engine = SweepEngine(
            simulator=Simulator(trace_store=TraceStore(tmp_path))
        )
        parallel = parallel_engine.sweep(
            ["mcf", "dealII"], mechanisms, workers=2, **kwargs
        )
        # A cold parallel sweep is all misses — collecting the cells the
        # prefill just computed must not read as memo hits.
        assert parallel_engine.cell_misses == 8
        assert parallel_engine.cell_hits == 0
        for key in sequential:
            for a, b in zip(sequential[key], parallel[key]):
                assert (a.benchmark, a.mechanism, a.seed) == (
                    b.benchmark, b.mechanism, b.seed
                )
                assert stats_dict(a.stats) == stats_dict(b.stats)


class TestRunnerIntegration:
    def test_runner_on_engine_matches_direct_simulation(self):
        engine = _engine()
        runner = ExperimentRunner(
            benchmarks=["mcf"], seeds=[1], warmup=256, measure=1000,
            engine=engine,
        )
        runner.run([MechanismConfig.baseline(), MechanismConfig.rsep_ideal()])
        fresh = Simulator(trace_store=None).run_benchmark(
            "mcf", MechanismConfig.baseline(),
            warmup=256, measure=1000, seed=1,
        )
        outcome = runner.outcome("mcf", "baseline")
        assert stats_dict(outcome.results[0].stats) == stats_dict(fresh.stats)
        assert runner.speedup("mcf", "rsep") == (
            runner.outcome("mcf", "rsep").ipc / outcome.ipc - 1.0
        )

    def test_two_runners_share_one_engine(self):
        engine = _engine()
        kwargs = dict(benchmarks=["mcf"], seeds=[1], warmup=256,
                      measure=1000, engine=engine)
        ExperimentRunner(**kwargs).run([MechanismConfig.baseline()])
        assert engine.cell_misses == 1
        ExperimentRunner(**kwargs).run([MechanismConfig.baseline()])
        assert engine.cell_misses == 1  # second runner recalled the cell

    def test_shared_engine_serves_custom_config_via_variant(self):
        default_engine = shared_engine()
        assert shared_engine() is default_engine
        custom = CoreConfig(rob_entries=64)
        variant = shared_engine(custom)
        assert variant is not default_engine
        assert variant.core_config == custom
        # The variant is memoised (its counters accumulate across
        # callers) and shares the default engine's caches: same cell
        # memo (sound — keys cover the core fingerprint), same trace
        # store and in-memory trace cache.
        assert shared_engine(custom) is variant
        assert variant._cells is default_engine._cells
        assert variant.simulator.trace_store is (
            default_engine.simulator.trace_store
        )
        assert variant.simulator._trace_cache is (
            default_engine.simulator._trace_cache
        )
        # The default core resolves to the shared engine itself.
        assert shared_engine(CoreConfig()) is default_engine

    def test_core_config_is_part_of_the_cell_key(self):
        # Regression for the unsound-sharing caveat: two different core
        # configs must never collide on a cell key (the small-ROB core
        # stalls more, so the stats differ too).
        engine = _engine()
        kwargs = dict(seed=1, warmup=256, measure=1000)
        big = engine.run_cell("mcf", MechanismConfig.baseline(), **kwargs)
        small_engine = engine.variant(CoreConfig(rob_entries=16))
        small = small_engine.run_cell(
            "mcf", MechanismConfig.baseline(), **kwargs
        )
        # Shared cell table, but the small-ROB cell was a genuine miss
        # (no collision with the default core's key), so the stats
        # differ too.
        assert small_engine._cells is engine._cells
        assert engine.cell_misses == 1 and small_engine.cell_misses == 1
        assert engine.cell_hits == 0 and small_engine.cell_hits == 0
        assert stats_dict(big.stats) != stats_dict(small.stats)

    def test_variant_results_match_private_engine(self):
        custom = CoreConfig(rob_entries=48)
        kwargs = dict(seed=1, warmup=256, measure=1000)
        shared = _engine()
        via_variant = shared.variant(custom).run_cell(
            "dealII", MechanismConfig.rsep_realistic(), **kwargs
        )
        private = SweepEngine(
            simulator=Simulator(custom, trace_store=None)
        ).run_cell("dealII", MechanismConfig.rsep_realistic(), **kwargs)
        assert stats_dict(via_variant.stats) == stats_dict(private.stats)

    def test_runner_reuses_engine_variant_for_custom_config(self):
        engine = _engine()
        custom = CoreConfig(rob_entries=64)
        runner = ExperimentRunner(
            core_config=custom, benchmarks=["mcf"], seeds=[1],
            warmup=256, measure=1000, engine=engine,
        )
        assert runner.engine is engine.variant(custom)
        assert runner.engine.core_config == custom


class TestSmokeGate:
    def test_smoke_passes(self):
        from repro.harness.sweep import _smoke

        assert _smoke() == 0
