"""Persistent trace store: codec round-trip, reuse, invalidation, recovery."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.pipeline.config import MechanismConfig
from repro.pipeline.simulator import Simulator
from repro.workloads.spec2006 import generate_trace
from repro.workloads.store import (
    TraceStore,
    pack_trace,
    unpack_trace,
    workload_code_version,
)

DYN_FIELDS = [
    "seq", "pc", "opcode", "fu", "latency", "pipelined", "dest", "src1",
    "src2", "result", "addr", "is_load", "is_store", "is_branch",
    "is_conditional", "is_call", "is_return", "taken", "target_pc",
    "zero_idiom", "move", "line", "eligible",
]


from helpers import stats_dict  # noqa: E402  (shared test helper)


def assert_traces_identical(left, right):
    assert left.name == right.name
    assert len(left) == len(right)
    for a, b in zip(left, right):
        for field in DYN_FIELDS:
            assert getattr(a, field) == getattr(b, field), (a.seq, field)


class TestCodec:
    def test_round_trip_is_field_exact(self):
        # gcc mixes every instruction class: ALU, loads/stores, branches,
        # calls/returns, moves and zero idioms.
        trace = generate_trace("gcc", 3000, seed=2)
        payload = pack_trace(trace, budget=3500)
        decoded, budget = unpack_trace(payload)
        assert budget == 3500
        assert_traces_identical(trace, decoded)

    def test_packed_payload_survives_pickle(self):
        trace = generate_trace("mcf", 1000, seed=1)
        payload = pickle.loads(
            pickle.dumps(pack_trace(trace, 1000),
                         protocol=pickle.HIGHEST_PROTOCOL)
        )
        decoded, _ = unpack_trace(payload)
        assert_traces_identical(trace, decoded)

    def test_packed_pickle_is_much_smaller_than_object_pickle(self):
        trace = generate_trace("hmmer", 4000, seed=1)
        packed = pickle.dumps(pack_trace(trace, 4000),
                              protocol=pickle.HIGHEST_PROTOCOL)
        objects = pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(packed) < len(objects) / 2.5

    def test_decoded_trace_runs_bit_identically(self, tmp_path):
        fresh = Simulator(trace_store=None)
        warm = Simulator(trace_store=TraceStore(tmp_path))
        # Populate the store, then force a second simulator to load it.
        Simulator(trace_store=TraceStore(tmp_path)).trace_for(
            "mcf", 1, 9096
        )
        kwargs = dict(warmup=1000, measure=4000, seed=1)
        a = fresh.run_benchmark("mcf", MechanismConfig.rsep_realistic(),
                                **kwargs)
        b = warm.run_benchmark("mcf", MechanismConfig.rsep_realistic(),
                               **kwargs)
        assert warm.trace_store.hits == 1
        assert stats_dict(a.stats) == stats_dict(b.stats)


class TestStoreReuse:
    def test_save_then_load_covers_shorter_requests(self, tmp_path):
        store = TraceStore(tmp_path)
        version = workload_code_version()
        trace = generate_trace("mcf", 4000, seed=1)
        store.save(trace, "mcf", 1, 4000, version)
        loaded = store.load("mcf", 1, 2000, version)
        assert loaded is not None
        reloaded, budget = loaded
        assert budget == 4000
        assert_traces_identical(trace, reloaded)

    def test_longer_request_misses_and_overwrites(self, tmp_path):
        store = TraceStore(tmp_path)
        version = workload_code_version()
        store.save(generate_trace("mcf", 1000, seed=1), "mcf", 1, 1000,
                   version)
        assert store.load("mcf", 1, 4000, version) is None
        longer = generate_trace("mcf", 4000, seed=1)
        store.save(longer, "mcf", 1, 4000, version)
        loaded = store.load("mcf", 1, 4000, version)
        assert loaded is not None and len(loaded[0]) == 4000

    def test_simulator_prefix_reuse_spans_processes(self, tmp_path):
        # First "process" interprets and persists; second loads, never
        # interprets, and serves shorter requests from the same object.
        first = Simulator(trace_store=TraceStore(tmp_path))
        first.trace_for("omnetpp", 1, 4000)
        second = Simulator(trace_store=TraceStore(tmp_path))
        trace = second.trace_for("omnetpp", 1, 4000)
        assert second.trace_store.hits == 1
        assert second.trace_for("omnetpp", 1, 1500) is trace

    def test_distinct_seeds_and_benchmarks_do_not_collide(self, tmp_path):
        store = TraceStore(tmp_path)
        version = workload_code_version()
        store.save(generate_trace("mcf", 500, seed=1), "mcf", 1, 500,
                   version)
        assert store.load("mcf", 2, 500, version) is None
        assert store.load("astar", 1, 500, version) is None


class TestInvalidation:
    def test_version_changes_with_source_content(self, tmp_path,
                                                 monkeypatch):
        import repro.workloads.store as store_module

        a = tmp_path / "kernels.py"
        a.write_text("KERNEL = 1\n")
        monkeypatch.setattr(store_module, "_module_sources",
                            lambda: [a])
        monkeypatch.setattr(store_module, "_version_cache", None)
        before = store_module.workload_code_version()
        assert store_module.workload_code_version() == before  # memoised
        a.write_text("KERNEL = 2\n")
        os.utime(a, ns=(1, 1))  # force a distinct stat signature
        after = store_module.workload_code_version()
        assert after != before

    def test_stale_version_cannot_serve_memory_or_disk(self, tmp_path,
                                                       monkeypatch):
        import repro.pipeline.simulator as simulator_module

        simulator = Simulator(trace_store=TraceStore(tmp_path))
        first = simulator.trace_for("mcf", 1, 1000)
        # Same version: both caches hit.
        assert simulator.trace_for("mcf", 1, 800) is first
        # "Edit" the workload code: the version moves, so neither the
        # in-memory entry nor the on-disk artifact may be served.
        monkeypatch.setattr(simulator_module, "workload_code_version",
                            lambda: "deadbeefdeadbeef")
        rebuilt = simulator.trace_for("mcf", 1, 800)
        assert rebuilt is not first
        assert simulator.trace_store.hits == 0

    def test_disk_artifacts_are_versioned(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = generate_trace("mcf", 500, seed=1)
        store.save(trace, "mcf", 1, 500, "version-a")
        assert store.load("mcf", 1, 500, "version-b") is None
        assert store.load("mcf", 1, 500, "version-a") is not None


class TestCorruptionRecovery:
    def _stored_path(self, store: TraceStore) -> "os.PathLike":
        files = list(store.root.glob("*.trace"))
        assert len(files) == 1
        return files[0]

    @pytest.mark.parametrize("corruption", ["truncate", "garbage", "empty"])
    def test_unreadable_file_falls_back_to_interpretation(
        self, tmp_path, corruption
    ):
        simulator = Simulator(trace_store=TraceStore(tmp_path))
        original = simulator.trace_for("mcf", 1, 2000)
        path = self._stored_path(simulator.trace_store)
        data = path.read_bytes()
        if corruption == "truncate":
            path.write_bytes(data[: len(data) // 2])  # partial write
        elif corruption == "garbage":
            path.write_bytes(b"\x80\x05garbage" + data[:64])
        else:
            path.write_bytes(b"")

        recovering = Simulator(trace_store=TraceStore(tmp_path))
        rebuilt = recovering.trace_for("mcf", 1, 2000)
        assert recovering.trace_store.recovered == 1
        assert recovering.trace_store.hits == 0
        assert_traces_identical(original, rebuilt)
        # The bad file was overwritten by the fallback interpretation...
        assert recovering.trace_store.writes == 1
        # ...so a third simulator loads it cleanly again.
        third = Simulator(trace_store=TraceStore(tmp_path))
        assert_traces_identical(original, third.trace_for("mcf", 1, 2000))
        assert third.trace_store.hits == 1

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = generate_trace("mcf", 500, seed=1)
        version = workload_code_version()
        store.save(trace, "mcf", 1, 500, version)
        path = self._stored_path(store)
        payload = pickle.loads(path.read_bytes())
        payload["format"] = 999
        path.write_bytes(pickle.dumps(payload))
        assert store.load("mcf", 1, 500, version) is None
        assert store.recovered == 1

    def test_unwritable_root_is_non_fatal(self, tmp_path):
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("file, not a directory")
        store = TraceStore(blocked)
        trace = generate_trace("mcf", 200, seed=1)
        assert store.save(trace, "mcf", 1, 200, "v") is None
        simulator = Simulator(trace_store=TraceStore(blocked))
        assert len(simulator.trace_for("mcf", 1, 200)) == 200


class TestCheckpointCorruptionRecovery:
    """A bad .ckpt re-warms instead of crashing (mirror of the
    corrupt-trace fallback above, for the µarch-checkpoint artifacts)."""

    SAMPLING_KWARGS = dict(warmup=1500, measure=4000, seed=1)

    def _sampling(self):
        from repro.sampling import SamplingConfig

        return SamplingConfig(
            enabled=True, interval=1000, detail_ratio=0.25,
            detail_warmup=128, checkpoints=True,
        )

    def _run(self, root):
        from repro.pipeline.config import MechanismConfig

        simulator = Simulator(trace_store=TraceStore(root))
        result = simulator.run_benchmark(
            "mcf", MechanismConfig.rsep_realistic(),
            sampling=self._sampling(), **self.SAMPLING_KWARGS,
        )
        return simulator.trace_store, stats_dict(result.stats)

    def _checkpoint_path(self, root):
        files = list(root.glob("*.ckpt"))
        assert len(files) == 1
        return files[0]

    @pytest.mark.parametrize(
        "corruption", ["truncate", "garbage", "empty", "foreign_payload"]
    )
    def test_bad_checkpoint_rewarrms_and_is_rewritten(
        self, tmp_path, corruption
    ):
        store, reference = self._run(tmp_path)
        assert store.checkpoint_writes == 1
        path = self._checkpoint_path(tmp_path)
        data = path.read_bytes()
        if corruption == "truncate":
            path.write_bytes(data[: len(data) // 2])  # partial write
        elif corruption == "garbage":
            path.write_bytes(b"\x80\x05garbage" + data[:64])
        elif corruption == "empty":
            path.write_bytes(b"")
        else:
            # Unpickles fine but is not a checkpoint tree: exercises the
            # restore_checkpoint fallback, not just the unpickling one.
            path.write_bytes(pickle.dumps({"format": 999, "bogus": True}))

        recovering, stats = self._run(tmp_path)
        assert recovering.checkpoint_hits + recovering.checkpoint_misses >= 1
        # Re-warmed results are bit-identical to the cold reference...
        assert stats == reference
        # ...and the bad artifact was overwritten, so a third run
        # restores cleanly.
        third, stats_again = self._run(tmp_path)
        assert third.checkpoint_hits == 1
        assert third.checkpoint_writes == 0
        assert stats_again == reference
