"""Differential equivalence for the native-speed compute plane (PR 7).

Two generated planes ship behind environment gates, each with its
generic implementation kept live as the oracle:

* ``REPRO_GENRENAME`` — per-mechanism generated rename/issue loops
  (``repro.pipeline.genrename``) vs the generic ``Pipeline._rename`` /
  ``_issue`` methods;
* ``REPRO_VECWARM`` — the NumPy event-indexed functional warmer
  (``repro.sampling.vecwarm``) vs the pure-Python column loop.

Every test here runs the same cell through both planes (and the four
on/off combinations) asserting *bit-identical* statistics, mirroring
``tests/test_columnar_equivalence.py``'s treatment of the columnar
plane.  The memoised distance-predictor fast path and the issue-port
arms inlined into both issue loops get direct hypothesis equivalence
tests of their own.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import env as api_env
from repro.backend.fu import FuClass, IssuePorts, PortConfig
from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.core.validation import ValidationMode
from repro.pipeline.config import (
    CoreConfig,
    MECHANISM_PRESETS,
    MechanismConfig,
)
from repro.pipeline.simulator import Simulator
from repro.predictors.distance import (
    DistancePredictor,
    DistancePredictorConfig,
)
from repro.sampling import SamplingConfig
from repro.sampling import vecwarm
from repro.sampling.warming import FunctionalWarmer
from repro.workloads.store import TraceStore

from helpers import stats_dict  # noqa: E402  (shared test helper)


SAMPLING = SamplingConfig(
    enabled=True, interval=1000, detail_ratio=0.25, detail_warmup=128,
)


def run_cell(
    monkeypatch,
    benchmark: str,
    mechanism: MechanismConfig,
    warmup: int,
    measure: int,
    *,
    genrename: bool = True,
    vectorised: bool = True,
    store_root=None,
    sampling: SamplingConfig | None = None,
) -> dict:
    """One cell under the requested compute-plane combination."""
    monkeypatch.setenv("REPRO_GENRENAME", "1" if genrename else "0")
    monkeypatch.setenv("REPRO_VECWARM", "1" if vectorised else "0")
    store = TraceStore(store_root) if store_root is not None else None
    simulator = Simulator(trace_store=store)
    result = simulator.run_benchmark(
        benchmark, mechanism, warmup=warmup, measure=measure, seed=1,
        sampling=sampling,
    )
    return stats_dict(result.stats)


class TestEnvFrontDoor:
    def test_new_vars_are_known(self):
        assert "REPRO_GENRENAME" in api_env.KNOWN_VARS
        assert "REPRO_VECWARM" in api_env.KNOWN_VARS
        unknown = api_env.warn_unknown_vars(
            {"REPRO_GENRENAME": "0", "REPRO_VECWARM": "0"}
        )
        assert unknown == []

    @pytest.mark.parametrize("reader,name", [
        (api_env.genrename_enabled, "REPRO_GENRENAME"),
        (api_env.vecwarm_enabled, "REPRO_VECWARM"),
    ], ids=["genrename", "vecwarm"])
    def test_readers_default_on_and_gate_off(self, monkeypatch, reader, name):
        monkeypatch.delenv(name, raising=False)
        assert reader() is True
        for off in api_env.OFF_VALUES:
            monkeypatch.setenv(name, off)
            assert reader() is False
        monkeypatch.setenv(name, "1")
        assert reader() is True


class TestGeneratedRenameEquivalence:
    """Generic vs generated rename/issue across every mechanism."""

    @pytest.mark.parametrize("preset", sorted(MECHANISM_PRESETS))
    def test_all_presets_match(self, monkeypatch, preset):
        mechanism = MECHANISM_PRESETS[preset]()
        generated = run_cell(
            monkeypatch, "mcf", mechanism, 500, 3000, genrename=True
        )
        generic = run_cell(
            monkeypatch, "mcf", mechanism, 500, 3000, genrename=False
        )
        assert generated == generic

    def test_all_validation_modes_match(self, monkeypatch):
        variants = [
            MechanismConfig.rsep_validation(mode) for mode in ValidationMode
        ]
        variants.append(MechanismConfig.rsep_validation(
            ValidationMode.REISSUE_ANY_FU, sampling=True,
            start_train_threshold=15,
        ))
        for mechanism in variants:
            generated = run_cell(
                monkeypatch, "hmmer", mechanism, 500, 3000, genrename=True
            )
            generic = run_cell(
                monkeypatch, "hmmer", mechanism, 500, 3000, genrename=False
            )
            assert generated == generic, mechanism.name

    def test_code_cache_shared_per_fingerprint(self):
        from repro.pipeline import genrename

        config = CoreConfig()
        first = genrename.compiled_stages(
            config, MechanismConfig.rsep_realistic()
        )
        second = genrename.compiled_stages(
            config, MechanismConfig.rsep_realistic()
        )
        assert first[0] is second[0] and first[1] is second[1]
        other = genrename.compiled_stages(config, MechanismConfig.baseline())
        assert other[0] is not first[0]

    def test_escape_hatch_restores_generic_methods(self, monkeypatch):
        from repro.pipeline.core import Pipeline

        trace = Simulator(trace_store=None).trace_for("mcf", 1, 500)
        monkeypatch.setenv("REPRO_GENRENAME", "0")
        pipeline = Pipeline(trace, CoreConfig(), MechanismConfig.baseline())
        assert "_rename" not in vars(pipeline)
        assert "_issue" not in vars(pipeline)
        monkeypatch.setenv("REPRO_GENRENAME", "1")
        pipeline = Pipeline(trace, CoreConfig(), MechanismConfig.baseline())
        assert "_rename" in vars(pipeline) and "_issue" in vars(pipeline)


class TestVectorisedWarmingEquivalence:
    """Pure vs vectorised warming on sampled cells (the only consumer)."""

    @pytest.mark.parametrize("factory", [
        MechanismConfig.baseline,
        MechanismConfig.rsep_realistic,
        MechanismConfig.rsep_plus_vp,
        MechanismConfig.rsep_ideal,
    ], ids=lambda factory: factory.__name__)
    def test_sampled_cells_match(self, monkeypatch, factory):
        kwargs = dict(warmup=1500, measure=6000, sampling=SAMPLING)
        fast = run_cell(
            monkeypatch, "xalancbmk", factory(), vectorised=True, **kwargs
        )
        pure = run_cell(
            monkeypatch, "xalancbmk", factory(), vectorised=False, **kwargs
        )
        assert fast["warmed"] > 0  # the warmer really ran
        assert fast == pure

    def test_vecwarm_plane_selected_by_default(self, monkeypatch):
        from repro.pipeline.core import Pipeline

        pytest.importorskip("numpy")
        monkeypatch.delenv("REPRO_VECWARM", raising=False)
        trace = Simulator(trace_store=None).trace_for("mcf", 1, 500)
        pipeline = Pipeline(trace, CoreConfig(), MechanismConfig.baseline())
        assert isinstance(
            vecwarm.make_warmer(pipeline), vecwarm.VecFunctionalWarmer
        )

    def test_no_numpy_falls_back_cleanly(self, monkeypatch):
        from repro.pipeline.core import Pipeline

        monkeypatch.setattr(vecwarm, "np", None)
        assert not vecwarm.numpy_available()
        simulator = Simulator(trace_store=None)
        trace = simulator.trace_for("mcf", 1, 500)
        pipeline = Pipeline(trace, CoreConfig(), MechanismConfig.baseline())
        warmer = vecwarm.make_warmer(pipeline)
        assert type(warmer) is FunctionalWarmer
        # And a sampled run still works end to end on the pure plane.
        result = simulator.run_benchmark(
            "mcf", MechanismConfig.rsep_realistic(), warmup=1000,
            measure=2000, seed=1, sampling=SAMPLING,
        )
        assert result.stats.warmed > 0


class TestFourPlaneCombinations:
    """genrename × vecwarm: all four combinations digest-identical,
    including through a sampled-checkpoint capture/restore cycle."""

    def test_sampled_rsep_realistic_all_combinations(self, monkeypatch):
        kwargs = dict(warmup=1500, measure=4000, sampling=SAMPLING)
        reference = run_cell(
            monkeypatch, "mcf", MechanismConfig.rsep_realistic(),
            genrename=False, vectorised=False, **kwargs,
        )
        for genrename in (True, False):
            for vectorised in (True, False):
                if not genrename and not vectorised:
                    continue
                observed = run_cell(
                    monkeypatch, "mcf", MechanismConfig.rsep_realistic(),
                    genrename=genrename, vectorised=vectorised, **kwargs,
                )
                assert observed == reference, (genrename, vectorised)

    def test_checkpoint_crosses_planes(self, monkeypatch, tmp_path):
        # A µarch checkpoint captured under the fast planes restores
        # bit-identically under the oracle planes: warmed state is a
        # pure function of the trace content, and the restore re-stamps
        # the fast-predict memo version (see checkpoint.py).
        mechanism = MechanismConfig.rsep_realistic()
        kwargs = dict(warmup=1500, measure=4000, sampling=SAMPLING)
        cold = run_cell(
            monkeypatch, "mcf", mechanism, genrename=True,
            vectorised=True, store_root=tmp_path, **kwargs,
        )
        monkeypatch.setenv("REPRO_GENRENAME", "0")
        monkeypatch.setenv("REPRO_VECWARM", "0")
        restored_store = TraceStore(tmp_path)
        restored = Simulator(trace_store=restored_store).run_benchmark(
            "mcf", mechanism, seed=1, **kwargs
        )
        assert restored_store.checkpoint_hits == 1
        # A genuine restore: no fallback re-warm rewrote the artifact.
        assert restored_store.checkpoint_writes == 0
        assert stats_dict(restored.stats) == cold


# ---------------------------------------------------------------------------
# Satellite: memoised fast_predict vs predict_reference
# ---------------------------------------------------------------------------


def _predictor_pair():
    """Two predictors sharing nothing, built identically: one drives the
    memoised generated path, the other the generic reference."""
    pairs = []
    for _ in range(2):
        history = GlobalHistory()
        path = PathHistory()
        predictor = DistancePredictor(
            DistancePredictorConfig.realistic(), history, path,
            XorShift64(0xDECAF),
        )
        pairs.append((history, path, predictor))
    return pairs


_PCS = [0x1000 + 4 * i for i in range(24)]

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 1)),
        st.tuples(st.just("path"), st.sampled_from(_PCS)),
        st.tuples(st.just("predict"), st.sampled_from(_PCS)),
        st.tuples(st.just("repredict"), st.sampled_from(_PCS)),
        st.tuples(st.just("train_pair"), st.integers(0, 40)),
        st.tuples(st.just("train_val"), st.booleans()),
        st.tuples(st.just("mispredict"), st.just(0)),
        st.tuples(st.just("snapshot"), st.just(0)),
        st.tuples(st.just("restore"), st.just(0)),
    ),
    min_size=4, max_size=80,
)


def _fields(p):
    return (
        p.pc, p.distance, p.use_pred, p.likely_candidate, p.provider,
        p.indices, p.tags, p.base_index, p.confidence_level,
    )


class TestMemoisedPredictEquivalence:
    """The memoised fast path vs ``predict_reference`` under interleaved
    pushes, trainings and squash-style history snapshot/restores."""

    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_random_interleavings(self, ops):
        (hist_fast, path_fast, fast), (hist_ref, path_ref, ref) = (
            _predictor_pair()
        )
        last_fast = last_ref = None
        snap = None
        for op, value in ops:
            if op == "push":
                hist_fast.push(value)
                hist_ref.push(value)
            elif op == "path":
                path_fast.push(value)
                path_ref.push(value)
            elif op in ("predict", "repredict"):
                last_fast = fast.predict(value)
                last_ref = ref.predict_reference(value)
                if op == "repredict":
                    # Same history/path/tables: the memo must serve the
                    # identical object, counters advancing as ever.
                    assert fast.predict(value) is last_fast
                    last_ref = ref.predict_reference(value)
                assert _fields(last_fast) == _fields(last_ref)
            elif op == "train_pair" and last_fast is not None:
                fast.train_from_pairing(last_fast, value)
                ref.train_from_pairing(last_ref, value)
            elif op == "train_val" and last_fast is not None:
                fast.train_from_validation(last_fast, value)
                ref.train_from_validation(last_ref, value)
            elif op == "mispredict" and last_fast is not None:
                fast.on_mispredict(last_fast)
                ref.on_mispredict(last_ref)
            elif op == "snapshot":
                snap = (
                    hist_fast.snapshot(), path_fast.snapshot(),
                    hist_ref.snapshot(), path_ref.snapshot(),
                )
            elif op == "restore" and snap is not None:
                # Squash emulation: roll history back under the memo.
                hist_fast.restore(snap[0])
                path_fast.restore(snap[1])
                hist_ref.restore(snap[2])
                path_ref.restore(snap[3])
        # Stat counters advanced in lockstep on both paths.
        assert fast.lookups == ref.lookups
        assert fast.confident_predictions == ref.confident_predictions

    def test_memo_hit_and_invalidation(self):
        (_, _, fast), _ = _predictor_pair()
        first = fast.predict(0x1000)
        assert fast.predict(0x1000) is first  # memo hit
        fast.invalidate_prediction_memo()
        recomputed = fast.predict(0x1000)
        assert recomputed is not first  # version re-stamped: recompute
        assert _fields(recomputed) == _fields(first)  # tables untouched

    def test_training_invalidates_memo(self):
        (_, _, fast), _ = _predictor_pair()
        first = fast.predict(0x1000)
        fast.train_from_pairing(first, 3)  # bumps the table version
        assert fast.predict(0x1000) is not first


# ---------------------------------------------------------------------------
# Satellite: try_issue arms inlined into the issue loops
# ---------------------------------------------------------------------------


def _inline_arm(ports: IssuePorts, fu: FuClass, cycle: int) -> bool:
    """Replica of the arms both issue loops inline (core.py / genrename):
    the INT_ALU/BRANCH and MEM_LOAD decisions with literal counts."""
    if fu is FuClass.INT_ALU or fu is FuClass.BRANCH:
        if ports._alu >= ports._alu_count:
            return False
        ports._alu += 1
        ports._total += 1
        return True
    if fu is FuClass.MEM_LOAD:
        if ports._ldst >= ports._ldst_ports:
            return False
        ports._ldst += 1
        ports._total += 1
        return True
    return ports.try_issue(fu, cycle)


class TestIssuePortInlineEquivalence:
    """The inlined arms match ``IssuePorts.try_issue`` exactly while a
    slot is free — and both issue loops break on ``_total >=
    issue_width`` before ever reaching an arm, so that is the only
    regime the inline decision runs in."""

    @settings(max_examples=120, deadline=None)
    @given(
        fus=st.lists(
            st.sampled_from([
                FuClass.INT_ALU, FuClass.BRANCH, FuClass.MEM_LOAD,
                FuClass.MEM_STORE, FuClass.FP_ALU, FuClass.INT_MUL,
            ]),
            min_size=1, max_size=24,
        ),
    )
    def test_arm_matches_method(self, fus):
        config = PortConfig()
        oracle = IssuePorts(config)
        inlined = IssuePorts(config)
        oracle.new_cycle(0)
        inlined.new_cycle(0)
        for fu in fus:
            # Both issue loops only reach the arms below this guard.
            if inlined._total >= config.issue_width:
                break
            assert oracle.try_issue(fu, 0) == _inline_arm(inlined, fu, 0)
            assert (
                oracle._total, oracle._alu, oracle._ldst,
                oracle._fp, oracle._store_only, oracle._mul,
            ) == (
                inlined._total, inlined._alu, inlined._ldst,
                inlined._fp, inlined._store_only, inlined._mul,
            )
