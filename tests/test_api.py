"""The typed front door (PR 5): specs, sessions, artifacts, env, CLI.

Covers the spec JSON round trip and fingerprint stability, the
environment overlay precedence (explicit field beats env beats default),
the ``REPRO_*`` typo guard, the deprecation shims, the versioned
``RunResult`` artifact (round trip, tamper detection), CLI smoke tests
for every subcommand, and the golden check that ``Session.run`` of the
fig4 spec is digest-identical to the legacy runner path.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import pytest

from repro.api import env as api_env
from repro.api.codec import decode, encode
from repro.api.figures import (
    FIG4_MECHANISMS,
    FIGURE_NAMES,
    figure_spec,
    render_figure,
    run_figure,
)
from repro.api.result import CellResult, RunResult
from repro.api.session import Session
from repro.api.spec import (
    ExperimentSpec,
    SamplingSpec,
    StoreSpec,
    WindowSpec,
)
from repro.harness.runner import ExperimentRunner
from repro.harness.sweep import SweepEngine
from repro.pipeline.config import MechanismConfig
from repro.pipeline.simulator import Simulator

TINY = WindowSpec(warmup=256, measure=1024)


def private_session() -> Session:
    """A session on a fresh, store-less engine (no shared memo)."""
    return Session(engine=SweepEngine(simulator=Simulator(trace_store=None)))


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        benchmarks=("mcf",),
        mechanisms=(
            MechanismConfig.baseline(), MechanismConfig.rsep_realistic()
        ),
        window=TINY,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


# ---------------------------------------------------------------------------
# Spec construction and validation
# ---------------------------------------------------------------------------


class TestSpecValidation:
    def test_window_rejects_bad_values(self):
        with pytest.raises(ValueError):
            WindowSpec(warmup=-1)
        with pytest.raises(ValueError):
            WindowSpec(measure=0)

    def test_spec_normalises_lists_to_tuples(self):
        spec = ExperimentSpec(
            benchmarks=["mcf"],
            mechanisms=[MechanismConfig.baseline()],
            seeds=[1, 2],
        )
        assert spec.benchmarks == ("mcf",)
        assert spec.seeds == (1, 2)
        assert isinstance(spec.mechanisms, tuple)

    def test_spec_rejects_unknown_benchmarks_at_construction(self):
        # A --benchmark typo must fail at spec build (clean, early), not
        # as a KeyError deep inside the sweep after work was done.
        with pytest.raises(ValueError, match="bogus"):
            ExperimentSpec(benchmarks=("bogus",))

    def test_spec_rejects_bare_string_benchmarks(self):
        with pytest.raises(TypeError, match="bare string"):
            ExperimentSpec(benchmarks="mcf")

    def test_spec_rejects_duplicate_mechanism_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentSpec(
                benchmarks=("mcf",),
                mechanisms=(
                    MechanismConfig.baseline(), MechanismConfig.baseline()
                ),
            )

    def test_spec_rejects_empty_grid_axes(self):
        with pytest.raises(ValueError):
            ExperimentSpec(benchmarks=())
        with pytest.raises(ValueError):
            ExperimentSpec(benchmarks=("mcf",), mechanisms=())
        with pytest.raises(ValueError):
            ExperimentSpec(benchmarks=("mcf",), seeds=())
        with pytest.raises(ValueError):
            ExperimentSpec(benchmarks=("mcf",), workers=0)

    def test_cells_counts_the_grid(self):
        spec = tiny_spec(seeds=(1, 2, 3))
        assert spec.cells == 1 * 2 * 3


# ---------------------------------------------------------------------------
# JSON round trip + fingerprint
# ---------------------------------------------------------------------------


class TestSpecSerialisation:
    def test_round_trip_preserves_equality_and_fingerprint(self):
        spec = tiny_spec(
            sampling=SamplingSpec(
                enabled=True, interval=1000, detail_ratio=0.25,
                detail_warmup=64,
            ),
            store=StoreSpec(path="/tmp/somewhere", columnar=False),
            seeds=(1, 2),
            workers=2,
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()

    def test_round_trip_every_preset_mechanism(self):
        from repro.pipeline.config import MECHANISM_PRESETS

        spec = tiny_spec(
            mechanisms=tuple(make() for make in MECHANISM_PRESETS.values())
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_fingerprint_ignores_labels_and_execution_details(self):
        spec = tiny_spec()
        renamed = dataclasses.replace(
            spec,
            mechanisms=tuple(
                dataclasses.replace(m, name=f"x-{m.name}")
                for m in spec.mechanisms
            ),
        )
        assert renamed.fingerprint() == spec.fingerprint()
        other_store = dataclasses.replace(
            spec, store=StoreSpec(path="/elsewhere"), workers=4
        )
        assert other_store.fingerprint() == spec.fingerprint()

    def test_fingerprint_tracks_content(self):
        spec = tiny_spec()
        assert dataclasses.replace(
            spec, window=WindowSpec(256, 2048)
        ).fingerprint() != spec.fingerprint()
        assert dataclasses.replace(
            spec, seeds=(1, 2)
        ).fingerprint() != spec.fingerprint()
        assert dataclasses.replace(
            spec, benchmarks=("dealII",)
        ).fingerprint() != spec.fingerprint()
        assert dataclasses.replace(
            spec,
            sampling=SamplingSpec(enabled=True, interval=512,
                                  detail_ratio=0.5),
        ).fingerprint() != spec.fingerprint()

    def test_fingerprint_is_stable_across_processes(self):
        # Nothing position- or id-dependent may leak into the payload:
        # the fingerprint of a canonical spec is a constant.
        spec = ExperimentSpec(
            benchmarks=("mcf",),
            mechanisms=(MechanismConfig.baseline(),),
            window=WindowSpec(512, 2000),
        )
        import hashlib

        payload = repr((
            spec.benchmarks, spec.seeds, (512, 2000),
            spec.sampling.fingerprint(),
            tuple(m.fingerprint() for m in spec.mechanisms),
        ))
        assert spec.fingerprint() == hashlib.sha256(
            payload.encode()
        ).hexdigest()[:16]

    def test_codec_refuses_foreign_classes(self):
        with pytest.raises(ValueError, match="repro"):
            decode({"$dc": "os.path:join"})
        with pytest.raises(TypeError):
            encode(object())

    def test_codec_round_trips_nested_structures(self):
        value = {
            "tuple": (1, 2, ("a", None)),
            "mech": MechanismConfig.rsep_realistic(),
        }
        restored = decode(json.loads(json.dumps(encode(value))))
        assert restored["tuple"] == (1, 2, ("a", None))
        assert restored["mech"] == MechanismConfig.rsep_realistic()


# ---------------------------------------------------------------------------
# Environment overlay
# ---------------------------------------------------------------------------


class TestEnvOverlay:
    def test_explicit_beats_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEASURE", "4242")
        monkeypatch.setenv("REPRO_SEEDS", "2")
        spec = ExperimentSpec.from_env(benchmarks=["mcf"])
        assert spec.window.measure == 4242      # env beats default
        assert spec.window.warmup == 8000       # default survives
        assert spec.seeds == (1, 2)             # env beats default
        explicit = ExperimentSpec.from_env(
            benchmarks=["mcf"], measure=9999, seeds=[7]
        )
        assert explicit.window.measure == 9999  # explicit beats env
        assert explicit.seeds == (7,)

    def test_window_spec_from_env_applies_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "1000")
        monkeypatch.setenv("REPRO_MEASURE", "2000")
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        assert WindowSpec.from_env() == WindowSpec(2000, 4000)

    def test_store_spec_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", "/tmp/store-here")
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        store = StoreSpec.from_env()
        assert store.path == "/tmp/store-here"
        assert store.enabled and not store.columnar
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        assert not StoreSpec.from_env().enabled
        assert StoreSpec.from_env().resolve_root() is None

    def test_pristine_env_store_spec_stays_default(self, monkeypatch):
        # Unset REPRO_TRACE_STORE must NOT materialise the cache path
        # into the spec: from_env has to equal the default StoreSpec so
        # Session.for_spec keeps the shared engine, and artifacts never
        # embed the producing host's home directory.
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        assert StoreSpec.from_env() == StoreSpec()
        spec = ExperimentSpec.from_env(benchmarks=["mcf"])
        assert spec.store == StoreSpec()
        from repro.harness.sweep import shared_engine

        assert Session.for_spec(spec).engine is shared_engine()
        assert "/." not in spec.to_json()  # no home-dir path baked in

    def test_default_store_spec_follows_env_resolution(self, monkeypatch):
        # tests/conftest.py sets REPRO_TRACE_STORE=off: the default spec
        # must not resurrect persistence behind the environment's back.
        assert StoreSpec().resolve_root() is None
        monkeypatch.setenv("REPRO_TRACE_STORE", "/tmp/elsewhere")
        assert str(StoreSpec().resolve_root()) == "/tmp/elsewhere"
        assert StoreSpec(enabled=False).resolve_root() is None

    def test_sampling_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLING", "1")
        monkeypatch.setenv("REPRO_INTERVAL", "3000")
        monkeypatch.setenv("REPRO_DETAIL_RATIO", "0.2")
        monkeypatch.setenv("REPRO_DETAIL_WARMUP", "64")
        config = api_env.sampling_from_env()
        assert config.enabled and config.interval == 3000
        assert config.detail_ratio == 0.2 and config.detail_warmup == 64
        monkeypatch.setenv("REPRO_SAMPLING", "off")
        assert not api_env.sampling_from_env().enabled

    def test_full_flag_switches_benchmark_default(self, monkeypatch):
        from repro.workloads.spec2006 import (
            benchmark_names,
            representative_names,
        )

        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert list(
            ExperimentSpec.from_env().benchmarks
        ) == representative_names()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert list(ExperimentSpec.from_env().benchmarks) == benchmark_names()


class TestTypoGuard:
    def test_unknown_repro_variable_warns_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_MESURE", "40000")  # the classic typo
        api_env._warned_unknown.discard("REPRO_MESURE")
        with pytest.warns(api_env.UnknownReproVariable, match="REPRO_MESURE"):
            unknown = api_env.warn_unknown_vars()
        assert unknown == ["REPRO_MESURE"]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            api_env.warn_unknown_vars()  # second call: silent

    def test_strict_mode_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TYPO_STRICT", "1")
        with pytest.raises(ValueError, match="REPRO_TYPO_STRICT"):
            ExperimentSpec.from_env(benchmarks=["mcf"], strict=True)

    def test_known_vars_cover_the_readme_table(self):
        for name in (
            "REPRO_WARMUP", "REPRO_MEASURE", "REPRO_SCALE", "REPRO_SEEDS",
            "REPRO_SAMPLING", "REPRO_INTERVAL", "REPRO_DETAIL_RATIO",
            "REPRO_DETAIL_WARMUP", "REPRO_TRACE_STORE", "REPRO_COLUMNAR",
            "REPRO_WORKERS", "REPRO_FULL",
        ):
            assert name in api_env.KNOWN_VARS


class TestDeprecationShims:
    def test_legacy_helpers_warn_and_delegate(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "3")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        from repro.harness.runner import default_seeds
        from repro.harness.sweep import default_workers
        from repro.pipeline.simulator import default_windows
        from repro.sampling import SamplingConfig
        from repro.workloads.store import default_store_root

        with pytest.deprecated_call():
            assert default_seeds() == [1, 2, 3]
        with pytest.deprecated_call():
            assert default_workers() == 2
        with pytest.deprecated_call():
            assert default_windows() == api_env.window_from_env()
        with pytest.deprecated_call():
            assert (SamplingConfig.from_environment()
                    == api_env.sampling_from_env())
        with pytest.deprecated_call():
            assert default_store_root() == api_env.store_root_from_env()

    def test_runner_resolves_environment_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "512")
        monkeypatch.setenv("REPRO_MEASURE", "2048")
        runner = ExperimentRunner(
            benchmarks=["mcf"],
            engine=SweepEngine(simulator=Simulator(trace_store=None)),
        )
        # The footgun this kills: changing the environment mid-process
        # used to re-resolve at every run() call.
        monkeypatch.setenv("REPRO_MEASURE", "9999")
        assert runner.warmup == 512
        assert runner.measure == 2048
        assert runner.sampling is not None  # pinned, not None-follow-env


# ---------------------------------------------------------------------------
# Session + RunResult
# ---------------------------------------------------------------------------


class TestSessionAndResult:
    def test_run_produces_one_cell_per_grid_point(self):
        spec = tiny_spec(seeds=(1, 2))
        result = private_session().run(spec)
        assert len(result.cells) == spec.cells == 4
        assert result.fingerprint == spec.fingerprint()
        assert result.outcome("mcf", "baseline").ipc > 0
        assert isinstance(
            result.speedup("mcf", "rsep-realistic"), float
        )

    def test_rerun_is_digest_identical(self):
        spec = tiny_spec()
        a = private_session().run(spec)
        b = private_session().run(spec)
        assert a.digest() == b.digest()

    def test_artifact_round_trip(self, tmp_path):
        spec = tiny_spec()
        result = private_session().run(spec)
        path = tmp_path / "artifact.json"
        result.save(path)
        restored = RunResult.load(path)
        assert restored.fingerprint == result.fingerprint
        assert restored.digest() == result.digest()
        assert restored.spec == spec
        assert [c.to_dict() for c in restored.cells] == [
            c.to_dict() for c in result.cells
        ]
        assert restored.meta["repro_version"] == result.meta["repro_version"]

    def test_artifact_rejects_tampering_and_future_formats(self, tmp_path):
        result = private_session().run(tiny_spec())
        payload = result.to_dict()
        edited = json.loads(json.dumps(payload))
        edited["cells"][0]["stats"]["cycles"] += 1
        with pytest.raises(ValueError, match="digest"):
            RunResult.from_dict(edited)
        # Stripping the digest key must not bypass the cell check.
        stripped = json.loads(json.dumps(payload))
        stripped["cells"][0]["stats"]["cycles"] += 1
        del stripped["digest"]
        with pytest.raises(ValueError, match="digest"):
            RunResult.from_dict(stripped)
        future = json.loads(json.dumps(payload))
        future["format"] = 99
        with pytest.raises(ValueError, match="format"):
            RunResult.from_dict(future)
        relabeled = json.loads(json.dumps(payload))
        relabeled["spec"]["window"]["measure"] = 4096
        with pytest.raises(ValueError, match="fingerprint"):
            RunResult.from_dict(relabeled)

    def test_default_session_shares_the_process_engine(self):
        from repro.harness.sweep import shared_engine

        assert Session().engine is shared_engine()

    def test_for_spec_never_lets_env_override_an_explicit_pin(
        self, monkeypatch
    ):
        # An explicitly pinned columnar=True must survive REPRO_COLUMNAR=0:
        # the shared engine (columnar follows env) is only acceptable when
        # the environment agrees with the spec.
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        spec = tiny_spec(store=StoreSpec(columnar=True))
        session = Session.for_spec(spec)
        from repro.harness.sweep import shared_engine

        assert session.engine is not shared_engine()
        assert session.simulator.columnar is True

    def test_session_for_spec_honours_private_store(self, tmp_path):
        spec = tiny_spec(store=StoreSpec(path=str(tmp_path / "store")))
        session = Session.for_spec(spec)
        result = session.run(spec)
        assert result.digest() == private_session().run(
            dataclasses.replace(spec, store=StoreSpec())
        ).digest()
        # The private store actually persisted the interpreted trace.
        assert list((tmp_path / "store").glob("*.trace"))

    def test_sampled_spec_records_sampling_fields(self):
        spec = tiny_spec(
            window=WindowSpec(256, 4096),
            sampling=SamplingSpec(
                enabled=True, interval=1000, detail_ratio=0.25,
                detail_warmup=64, checkpoints=False,
            ),
        )
        result = private_session().run(spec)
        stats = result.outcome("mcf", "baseline").merged_stats[0]
        assert stats.intervals > 0 and stats.warmed > 0
        restored = RunResult.from_json(result.to_json())
        assert restored.digest() == result.digest()


# ---------------------------------------------------------------------------
# Golden: the spec path is digest-identical to the legacy runner path
# ---------------------------------------------------------------------------


class TestGoldenFig4:
    BENCHMARKS = ["mcf", "dealII"]
    WINDOW = WindowSpec(512, 2000)

    def test_session_matches_legacy_runner_bit_for_bit(self):
        spec = figure_spec(
            "fig4", benchmarks=self.BENCHMARKS, window=self.WINDOW
        )
        result = private_session().run(spec)

        runner = ExperimentRunner(
            benchmarks=self.BENCHMARKS,
            warmup=self.WINDOW.warmup,
            measure=self.WINDOW.measure,
            engine=SweepEngine(simulator=Simulator(trace_store=None)),
        )
        runner.run(list(FIG4_MECHANISMS))

        legacy_cells = []
        for benchmark in self.BENCHMARKS:
            for mechanism in FIG4_MECHANISMS:
                outcome = runner.outcome(benchmark, mechanism.name)
                for sim in outcome.results:
                    legacy_cells.append(CellResult(
                        benchmark, mechanism.name, sim.seed, sim.stats
                    ))
                # Field-for-field identity, not just digest identity.
                assert dataclasses.asdict(
                    outcome.merged_stats[0]
                ) == dataclasses.asdict(
                    result.outcome(benchmark, mechanism.name).merged_stats[0]
                )
        legacy_result = RunResult(spec=spec, cells=legacy_cells)
        assert legacy_result.digest() == result.digest()

    def test_figures_cli_matches_the_api_path(self, tmp_path, capsys):
        from repro.api.cli import main

        spec = figure_spec(
            "fig4", benchmarks=self.BENCHMARKS, window=self.WINDOW
        )
        reference = private_session().run(spec)
        code = main([
            "figures", "fig4",
            "--benchmark", "mcf", "--benchmark", "dealII",
            "--warmup", "512", "--measure", "2000",
            "--out", str(tmp_path),
        ])
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out
        artifact = RunResult.load(tmp_path / "fig4.json")
        assert artifact.fingerprint == reference.fingerprint
        assert artifact.digest() == reference.digest()


# ---------------------------------------------------------------------------
# CLI smoke tests (one per subcommand)
# ---------------------------------------------------------------------------


class TestCliSweep:
    def test_tiny_sweep_writes_artifact(self, tmp_path, capsys):
        from repro.api.cli import main

        out = tmp_path / "sweep.json"
        code = main([
            "sweep", "--benchmark", "mcf",
            "--mechanism", "baseline", "--mechanism", "rsep",
            "--warmup", "256", "--measure", "1024",
            "--json", str(out),
        ])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "fingerprint" in rendered and "vs baseline" in rendered
        artifact = RunResult.load(out)
        assert {c.mechanism for c in artifact.cells} == {"baseline", "rsep"}

    def test_smoke_flag_delegates_to_the_gate(self, capsys):
        from repro.api.cli import main

        assert main(["sweep", "--smoke"]) == 0
        assert "sweep smoke: cold == memoised == warm-store" in (
            capsys.readouterr().out
        )

    def test_sampled_flag_enables_interval_sampling(
        self, tmp_path, monkeypatch
    ):
        from repro.api.cli import main

        monkeypatch.setenv("REPRO_INTERVAL", "1000")
        monkeypatch.setenv("REPRO_DETAIL_RATIO", "0.25")
        monkeypatch.setenv("REPRO_DETAIL_WARMUP", "64")
        out = tmp_path / "sampled.json"
        code = main([
            "sweep", "--sampled", "--benchmark", "mcf",
            "--mechanism", "baseline",
            "--warmup", "256", "--measure", "4096", "--json", str(out),
        ])
        assert code == 0
        artifact = RunResult.load(out)
        assert artifact.spec.sampling.enabled
        assert artifact.cells[0].stats.intervals > 0

    def test_smoke_refuses_sweep_configuration_flags(self, capsys):
        # The gate is fixed; silently dropping --benchmark/--json would
        # let a user believe the gate covered their configuration.
        from repro.api.cli import main

        assert main(["sweep", "--smoke", "--benchmark", "mcf"]) == 2
        assert "--benchmark" in capsys.readouterr().err
        assert main(["perf", "--smoke", "--benchmark", "mcf"]) == 2
        assert "cannot take" in capsys.readouterr().err


class TestCliPerf:
    def test_forwards_to_the_perf_harness(self, capsys):
        from repro.api.cli import main

        code = main([
            "perf", "--benchmark", "mcf", "--mechanism", "baseline",
            "--warmup", "256", "--measure", "1024", "--repeats", "1",
        ])
        assert code == 0
        assert "aggregate" in capsys.readouterr().out

    def test_smoke_gate_reads_the_recorded_reference(self, tmp_path, capsys):
        from repro.api.cli import main

        reference = {
            "smoke": {
                "benchmark": "mcf", "warmup": 256, "measure": 1024,
                "tolerance": 0.70,
                # Impossible-to-miss floor: this smoke test checks the
                # gate's plumbing, not the host's speed (CI runs the
                # real gate against the committed BENCH_perf.json).
                "aggregate_kips": {"baseline": 0.001},
            }
        }
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(reference), encoding="utf-8")
        code = main([
            "perf", "--smoke", "--json", str(path), "--repeats", "1"
        ])
        assert code == 0
        assert "-> ok" in capsys.readouterr().out

    def test_smoke_gate_fails_without_a_reference(self, tmp_path):
        from repro.api.cli import main

        assert main([
            "perf", "--smoke", "--json", str(tmp_path / "missing.json"),
        ]) == 2


class TestCliReportInspect:
    @pytest.fixture()
    def artifact(self, tmp_path):
        path = tmp_path / "artifact.json"
        private_session().run(tiny_spec()).save(path)
        return path

    def test_report_renders_artifacts(self, artifact, capsys):
        from repro.api.cli import main

        assert main(["report", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "rsep-realistic" in out

    def test_report_with_figure_formatter(self, tmp_path, capsys):
        from repro.api.cli import main

        path = tmp_path / "fig7.json"
        private_session().run(
            figure_spec("fig7", benchmarks=["mcf"], window=TINY)
        ).save(path)
        assert main(["report", "--figure", "fig7", str(path)]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_report_figure_mismatch_is_an_error_not_a_crash(
        self, artifact, capsys
    ):
        # The tiny artifact has baseline + rsep-realistic only; fig4
        # needs the full mechanism list — report must fail cleanly.
        from repro.api.cli import main

        assert main(["report", "--figure", "fig4", str(artifact)]) == 1
        assert "cannot render as fig4" in capsys.readouterr().err

    def test_figures_rejects_unknown_names(self, capsys):
        from repro.api.cli import main

        assert main(["figures", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_cli_rejects_benchmark_typos_cleanly(self, capsys):
        from repro.api.cli import main

        assert main(["sweep", "--benchmark", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err
        assert main(["figures", "fig1", "--benchmark", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_figures_fig1_notes_missing_artifact_with_out(
        self, tmp_path, capsys
    ):
        from repro.api.cli import main

        assert main([
            "figures", "fig1", "--benchmark", "mcf", "--measure", "1500",
            "--out", str(tmp_path / "figs"),
        ]) == 0
        assert "nothing saved" in capsys.readouterr().out

    def test_report_flags_corrupt_artifacts(self, tmp_path, capsys):
        from repro.api.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert main(["report", str(bad)]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_inspect_artifact(self, artifact, capsys):
        from repro.api.cli import main

        assert main(["inspect", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "digest" in out and "meta.python" in out

    def test_inspect_environment_mode(self, capsys, monkeypatch):
        from repro.api.cli import main

        monkeypatch.delenv("REPRO_TYPO_STRICT", raising=False)
        assert main(["inspect"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_WARMUP" in out and "environment overlay" in out

    def test_no_command_prints_help(self, capsys):
        from repro.api.cli import main

        assert main([]) == 2
        assert "sweep" in capsys.readouterr().out


class TestFigureRegistry:
    def test_every_sweep_figure_has_a_spec(self):
        for name in FIGURE_NAMES:
            if name == "fig1":
                with pytest.raises(KeyError):
                    figure_spec(name)
                continue
            spec = figure_spec(name, benchmarks=["mcf"])
            assert spec.benchmarks == ("mcf",)
            assert len(spec.mechanisms) >= 1

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError, match="fig99"):
            figure_spec("fig99")

    def test_render_uses_the_named_formatter(self):
        spec = figure_spec(
            "table1", benchmarks=["mcf"], window=TINY
        )
        result = private_session().run(spec)
        text = render_figure("table1", result)
        assert "Table I" in text and "mcf" in text

    def test_fig5_and_fig6_formatters_render(self):
        session = private_session()
        _, fig5 = run_figure(
            "fig5", session=session, benchmarks=["mcf"], window=TINY
        )
        assert "Figure 5" in fig5 and "dist%" in fig5
        _, fig6 = run_figure(
            "fig6", session=session, benchmarks=["mcf"], window=TINY
        )
        assert "Figure 6" in fig6 and "anyFU%" in fig6

    def test_fig1_runs_the_functional_analysis(self):
        from repro.api.figures import run_fig1
        from repro.workloads.spec2006 import benchmark_names

        profiles, text = run_fig1(instructions=2000)
        assert "Figure 1" in text
        assert len(profiles) == len(benchmark_names())
        # CLI --benchmark/--measure reach fig1 too (they used to be
        # silently ignored).
        subset, _ = run_figure(
            "fig1", benchmarks=["mcf"], window=WindowSpec(256, 1500)
        )
        assert len(subset) == 1 and subset[0].benchmark == "mcf"

    def test_session_rejects_engine_plus_store(self):
        with pytest.raises(ValueError, match="not both"):
            Session(store=StoreSpec(), engine=SweepEngine(
                simulator=Simulator(trace_store=None)
            ))

    def test_run_figure_returns_result_and_text(self):
        result, text = run_figure(
            "fig7", session=private_session(), benchmarks=["mcf"],
            window=TINY,
        )
        assert "Figure 7" in text
        assert result.outcome("mcf", "rsep-realistic").ipc > 0
