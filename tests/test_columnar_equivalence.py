"""Differential equivalence: columnar runtime vs the eager-DynInst oracle.

``REPRO_COLUMNAR=0`` keeps the legacy trace plane — eager ``DynInst``
decode on store load, object-walking fetch and warming loops — alive as
a live oracle.  Every test here runs the same cell through both planes
and asserts *bit-identical* statistics, so any drift in the columnar
fetch loop, the lazy row materialiser, the column-indexed warmer or the
codec itself fails immediately.

The cells mirror ``tests/test_determinism.py``'s golden set (every
golden mechanism config), extend over all validation modes, and cover
sampled mode (functional warming + drains) plus the on-disk store round
trip in both planes.
"""

from __future__ import annotations

import pytest

from repro.core.validation import ValidationMode
from repro.pipeline.config import MechanismConfig
from repro.pipeline.simulator import Simulator
from repro.sampling import SamplingConfig
from repro.workloads.columnar import ColumnarTrace
from repro.workloads.store import TraceStore
from repro.workloads.trace import Trace


from helpers import stats_dict  # noqa: E402  (shared test helper)


#: The golden set of tests/test_determinism.py: every mechanism config
#: pinned there, with the same windows.
GOLDEN_CELLS = [
    ("mcf", MechanismConfig.baseline, 1000, 4000),
    ("mcf", MechanismConfig.rsep_realistic, 1000, 4000),
    ("libquantum", MechanismConfig.rsep_plus_vp, 0, 8000),
]


def run_cell(
    monkeypatch,
    columnar: bool,
    benchmark: str,
    mechanism: MechanismConfig,
    warmup: int,
    measure: int,
    store_root=None,
    sampling: SamplingConfig | None = None,
) -> dict:
    """One (benchmark, mechanism) cell under the requested trace plane."""
    monkeypatch.setenv("REPRO_COLUMNAR", "1" if columnar else "0")
    store = TraceStore(store_root) if store_root is not None else None
    simulator = Simulator(trace_store=store)
    result = simulator.run_benchmark(
        benchmark, mechanism, warmup=warmup, measure=measure, seed=1,
        sampling=sampling,
    )
    return stats_dict(result.stats)


class TestTracePlaneSelection:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR", raising=False)
        trace = Simulator(trace_store=None).trace_for("mcf", 1, 500)
        assert isinstance(trace, ColumnarTrace)

    def test_escape_hatch_restores_dyninst_trace(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        trace = Simulator(trace_store=None).trace_for("mcf", 1, 500)
        assert isinstance(trace, Trace)

    def test_planes_share_one_store_artifact(self, monkeypatch, tmp_path):
        # One file on disk serves both planes: the payload is the wire
        # format either way, only the in-memory view differs.
        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        Simulator(trace_store=TraceStore(tmp_path)).trace_for("mcf", 1, 800)
        assert len(list(tmp_path.glob("*.trace"))) == 1
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        legacy = Simulator(trace_store=TraceStore(tmp_path))
        trace = legacy.trace_for("mcf", 1, 800)
        assert legacy.trace_store.hits == 1
        assert isinstance(trace, Trace)


class TestGoldenCellEquivalence:
    @pytest.mark.parametrize(
        "bench,mechanism,warmup,measure", GOLDEN_CELLS,
        ids=lambda value: getattr(value, "__name__", str(value)),
    )
    def test_columnar_equals_dyninst(
        self, monkeypatch, bench, mechanism, warmup, measure
    ):
        columnar = run_cell(
            monkeypatch, True, bench, mechanism(), warmup, measure
        )
        legacy = run_cell(
            monkeypatch, False, bench, mechanism(), warmup, measure
        )
        assert columnar == legacy

    def test_store_round_trip_equivalence(self, monkeypatch, tmp_path):
        # Interpret + persist once (columnar), then load the same
        # artifact through both planes: all three runs bit-identical.
        mechanism = MechanismConfig.rsep_realistic()
        cold = run_cell(
            monkeypatch, True, "mcf", mechanism, 1000, 4000,
            store_root=tmp_path,
        )
        warm_columnar = run_cell(
            monkeypatch, True, "mcf", mechanism, 1000, 4000,
            store_root=tmp_path,
        )
        warm_legacy = run_cell(
            monkeypatch, False, "mcf", mechanism, 1000, 4000,
            store_root=tmp_path,
        )
        assert cold == warm_columnar == warm_legacy


class TestValidationModeEquivalence:
    """All validation modes through both planes (queue traffic, squash
    drain and §IV.F retention all ride on trace-plane-fed state)."""

    def _variants(self):
        yield MechanismConfig.rsep_validation(ValidationMode.IDEAL)
        yield MechanismConfig.rsep_validation(ValidationMode.REISSUE_LOCK_FU)
        yield MechanismConfig.rsep_validation(ValidationMode.REISSUE_ANY_FU)
        yield MechanismConfig.rsep_validation(
            ValidationMode.REISSUE_ANY_FU, sampling=True,
            start_train_threshold=15,
        )

    def test_all_modes_match(self, monkeypatch):
        for mechanism in self._variants():
            columnar = run_cell(
                monkeypatch, True, "hmmer", mechanism, 500, 3000
            )
            legacy = run_cell(
                monkeypatch, False, "hmmer", mechanism, 500, 3000
            )
            assert columnar == legacy, mechanism.name


class TestSampledEquivalence:
    """Sampled mode exercises the column-indexed warmer, drains and
    ``skip_to`` — the paths a plain full-detail run never touches."""

    SAMPLING = SamplingConfig(
        enabled=True, interval=1000, detail_ratio=0.25, detail_warmup=128,
    )

    @pytest.mark.parametrize("mechanism_factory", [
        MechanismConfig.baseline,
        MechanismConfig.rsep_realistic,
        MechanismConfig.rsep_plus_vp,
    ], ids=lambda factory: factory.__name__)
    def test_sampled_columnar_equals_dyninst(
        self, monkeypatch, mechanism_factory
    ):
        kwargs = dict(warmup=1500, measure=6000, sampling=self.SAMPLING)
        columnar = run_cell(
            monkeypatch, True, "xalancbmk", mechanism_factory(), **kwargs
        )
        legacy = run_cell(
            monkeypatch, False, "xalancbmk", mechanism_factory(), **kwargs
        )
        assert columnar["warmed"] > 0  # the warmer really ran
        assert columnar == legacy

    def test_checkpoint_crosses_planes(self, monkeypatch, tmp_path):
        # A µarch checkpoint captured under the columnar plane restores
        # bit-identically under the legacy plane (and vice versa): the
        # warmed state is a pure function of the trace *content*.
        mechanism = MechanismConfig.rsep_realistic()
        kwargs = dict(warmup=1500, measure=4000, sampling=self.SAMPLING)
        cold = run_cell(
            monkeypatch, True, "mcf", mechanism, store_root=tmp_path,
            **kwargs,
        )
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        restored_store = TraceStore(tmp_path)
        restored = Simulator(trace_store=restored_store).run_benchmark(
            "mcf", mechanism, seed=1, **kwargs
        )
        assert restored_store.checkpoint_hits == 1
        # A genuine restore: no fallback re-warm rewrote the artifact.
        assert restored_store.checkpoint_writes == 0
        assert stats_dict(restored.stats) == cold
