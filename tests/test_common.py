"""Unit tests for repro.common: bitops, rng, counters, history, storage."""

import math

import pytest

from repro.common.bitops import (
    MASK64,
    bit_select,
    fold_bits,
    fold_hash,
    from_signed64,
    is_power_of_two,
    log2_exact,
    mask64,
    popcount64,
    to_signed64,
)
from repro.common.counters import (
    FPC_DEFAULT_PROBABILITIES,
    ProbabilisticCounter,
    SaturatingCounter,
    expected_occurrences_to_saturate,
)
from repro.common.history import FoldedRegister, GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.common.storage import (
    StorageReport,
    bits_to_kib,
    fifo_history_bits,
    hrf_bits,
    isrb_bits,
)


class TestBitops:
    def test_mask64_truncates(self):
        assert mask64(1 << 64) == 0
        assert mask64(-1) == MASK64

    def test_signed_round_trip(self):
        for value in (0, 1, -1, 2**63 - 1, -(2**63)):
            assert to_signed64(from_signed64(value)) == value

    def test_to_signed64_negative(self):
        assert to_signed64(MASK64) == -1

    def test_bit_select(self):
        assert bit_select(0b101100, 3, 2) == 0b11
        assert bit_select(MASK64, 63, 0) == MASK64

    def test_bit_select_rejects_bad_range(self):
        with pytest.raises(ValueError):
            bit_select(1, 0, 3)

    def test_fold_hash_formula_14bit(self):
        # Hash[13..0] = val[13..0] ^ val[27..14] ^ val[41..28]
        #               ^ val[55..42] ^ val[63..56]
        value = 0x0123_4567_89AB_CDEF
        expected = (
            bit_select(value, 13, 0)
            ^ bit_select(value, 27, 14)
            ^ bit_select(value, 41, 28)
            ^ bit_select(value, 55, 42)
            ^ bit_select(value, 63, 56)
        )
        assert fold_hash(value, 14) == expected

    def test_fold_hash_zero_and_minus_one_distinct_at_14_bits(self):
        # The paper picks a non-power-of-two width so 0 and -1 differ.
        assert fold_hash(0, 14) == 0
        assert fold_hash(MASK64, 14) != 0

    def test_fold_hash_minus_one_collides_at_16_bits(self):
        # ...whereas power-of-two folds collapse -1 onto 0 (§IV.A).
        assert fold_hash(MASK64, 16) == 0

    def test_fold_hash_range(self):
        for bits in (8, 13, 14, 16):
            assert 0 <= fold_hash(0xDEADBEEF12345678, bits) < (1 << bits)

    def test_fold_hash_rejects_bad_width(self):
        with pytest.raises(ValueError):
            fold_hash(1, 0)

    def test_fold_bits(self):
        assert fold_bits(0b1111, 4, 2) == 0b00  # 11 ^ 11
        assert fold_bits(0b1101, 4, 2) == 0b10  # 01 ^ 11

    def test_popcount(self):
        assert popcount64(0) == 0
        assert popcount64(MASK64) == 64

    def test_power_of_two_helpers(self):
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(96)
        assert log2_exact(4096) == 12
        with pytest.raises(ValueError):
            log2_exact(96)


class TestXorShift64:
    def test_deterministic(self):
        a, b = XorShift64(7), XorShift64(7)
        assert [a.next_u64() for _ in range(10)] == [
            b.next_u64() for _ in range(10)
        ]

    def test_seed_zero_is_remapped(self):
        rng = XorShift64(0)
        assert rng.next_u64() != 0

    def test_next_below_bounds(self):
        rng = XorShift64(3)
        assert all(0 <= rng.next_below(17) < 17 for _ in range(200))

    def test_next_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            XorShift64(1).next_below(0)

    def test_chance_extremes(self):
        rng = XorShift64(9)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    def test_chance_statistics(self):
        rng = XorShift64(11)
        hits = sum(rng.chance(0.25) for _ in range(4000))
        assert 800 < hits < 1200

    def test_choice_and_shuffle(self):
        rng = XorShift64(5)
        items = list(range(16))
        assert rng.choice(items) in items
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        with pytest.raises(ValueError):
            rng.choice([])

    def test_fork_independence(self):
        rng = XorShift64(13)
        f1, f2 = rng.fork(1), rng.fork(2)
        assert f1.next_u64() != f2.next_u64()


class TestSaturatingCounter:
    def test_saturates_high_and_low(self):
        c = SaturatingCounter(2)
        for _ in range(10):
            c.increment()
        assert c.value == 3 and c.is_saturated()
        for _ in range(10):
            c.decrement()
        assert c.value == 0

    def test_reset_bounds(self):
        c = SaturatingCounter(3)
        c.reset(5)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.reset(8)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)


class TestProbabilisticCounter:
    def test_first_increment_always_succeeds(self):
        c = ProbabilisticCounter(XorShift64(1))
        assert c.increment()
        assert c.value == 1

    def test_saturation_stops_increments(self):
        c = ProbabilisticCounter(XorShift64(1), probabilities=(1.0, 1.0))
        c.increment(), c.increment()
        assert c.is_saturated()
        assert not c.increment()

    def test_hard_reset_on_mispredict(self):
        c = ProbabilisticCounter(XorShift64(1), probabilities=(1.0, 1.0))
        c.increment(), c.increment()
        c.on_mispredict()
        assert c.value == 0

    def test_soft_decay(self):
        c = ProbabilisticCounter(
            XorShift64(1), probabilities=(1.0, 1.0), hard_reset=False
        )
        c.increment(), c.increment()
        c.on_mispredict()
        assert c.value == 1

    def test_expected_occurrences(self):
        expected = expected_occurrences_to_saturate(FPC_DEFAULT_PROBABILITIES)
        assert expected == pytest.approx(1 + 16 * 4 + 32 * 2)

    def test_probabilistic_training_time_statistics(self):
        rng = XorShift64(23)
        times = []
        for _ in range(120):
            c = ProbabilisticCounter(rng, probabilities=(1.0, 0.25, 0.25))
            steps = 0
            while not c.is_saturated():
                c.increment()
                steps += 1
            times.append(steps)
        mean = sum(times) / len(times)
        assert 5 < mean < 14  # expectation is 1 + 4 + 4 = 9


class TestFoldedRegister:
    def test_matches_direct_fold(self):
        # Incrementally folded history must equal a from-scratch fold.
        history_bits, folded_bits = 12, 5
        fold = FoldedRegister(history_bits, folded_bits)
        bits = []
        rng = XorShift64(77)
        for _ in range(200):
            new_bit = rng.next_below(2)
            outgoing = bits[-history_bits] if len(bits) >= history_bits else 0
            fold.push(new_bit, outgoing)
            bits.append(new_bit)
            raw = 0
            for bit in bits[-history_bits:]:
                raw = (raw << 1) | bit
            assert fold.value == fold_bits(raw, history_bits, folded_bits)


class TestGlobalHistory:
    def test_raw_window(self):
        h = GlobalHistory()
        for bit in (1, 0, 1, 1):
            h.push(bit)
        assert h.raw(4) == 0b1011

    def test_snapshot_restore(self):
        h = GlobalHistory()
        h.register_fold(8, 4)
        for bit in (1, 0, 1):
            h.push(bit)
        snap = h.snapshot()
        h.push(1), h.push(1)
        h.restore(snap)
        assert h.raw(3) == 0b101
        assert h.snapshot() == snap

    def test_fold_registration_idempotent(self):
        h = GlobalHistory()
        h.register_fold(16, 6)
        h.register_fold(16, 6)
        h.push(1)
        assert h.folded(16, 6) == 1

    def test_fold_capacity_check(self):
        h = GlobalHistory(capacity=32)
        with pytest.raises(ValueError):
            h.register_fold(64, 8)


class TestPathHistory:
    def test_push_and_restore(self):
        p = PathHistory()
        p.push(0x1004)
        snap = p.snapshot()
        p.push(0x1008)
        p.restore(snap)
        assert p.snapshot() == snap


class TestStorage:
    def test_report_totals(self):
        report = StorageReport("x")
        report.add("a", 1024)
        report.add_entries("b", 16, 8)
        assert report.total_bits == 1024 + 128
        assert report.total_bytes == 144.0
        assert "TOTAL" in report.render()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StorageReport("x").add("bad", -1)

    def test_paper_fifo_sizes(self):
        # §IV.B.2: 256 entries, 14-bit hash + 10-bit CSN = 768 bytes.
        assert fifo_history_bits(256, 14, 10) / 8 == 768
        # §VI.A.2: 128 entries = 384 bytes.
        assert fifo_history_bits(128, 14, 10) / 8 == 384

    def test_paper_isrb_size(self):
        # §VI.B: 24 entries × (2 × 6-bit counters + 9-bit preg tag) = 63B.
        assert isrb_bits(24, 6, 9) / 8 == 63

    def test_hrf_bits(self):
        assert hrf_bits(471, 14) == 471 * 14

    def test_kib(self):
        assert bits_to_kib(8 * 1024) == 1.0
