"""Tests for the prediction structures: TAGE, distance, D-VTAGE, zero,
gshare, and the confidence scale."""

import pytest

from repro.common.bitops import mask64
from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.frontend.tage import TageBranchPredictor, TageConfig
from repro.predictors.confidence import (
    PAPER,
    SCALED,
    ConfidenceScale,
)
from repro.predictors.distance import (
    DistancePredictor,
    DistancePredictorConfig,
    NO_DISTANCE,
)
from repro.predictors.dvtage import DVtageConfig, DVtagePredictor
from repro.predictors.gshare_distance import (
    GshareDistanceConfig,
    GshareDistancePredictor,
)
from repro.predictors.tagged_table import (
    ComponentGeometry,
    GeometricIndexer,
    geometric_history_lengths,
)
from repro.predictors.zero import ZeroPredictor


def fresh_context(seed=1):
    return GlobalHistory(), PathHistory(), XorShift64(seed)


class TestConfidenceScale:
    def test_paper_scale_saturation(self):
        assert PAPER.cumulative[-1] == pytest.approx(255, rel=0.05)

    def test_scaled_saturation(self):
        assert SCALED.cumulative[-1] == pytest.approx(128, rel=0.05)

    def test_threshold_mapping_monotonic(self):
        scale = ConfidenceScale(saturate_occurrences=64)
        levels = [
            scale.level_for_paper_threshold(t) for t in (0, 15, 63, 255)
        ]
        assert levels == sorted(levels)
        assert levels[-1] == scale.levels

    def test_threshold_ratio_preserved(self):
        # start_train (63) must map strictly below use_pred (255).
        for scale in (SCALED, PAPER, ConfidenceScale(saturate_occurrences=32)):
            assert (
                scale.level_for_paper_threshold(63)
                < scale.level_for_paper_threshold(255)
            )

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ConfidenceScale(saturate_occurrences=3, levels=7)


class TestGeometricMachinery:
    def test_history_lengths_monotonic(self):
        lengths = geometric_history_lengths(4, 640, 12)
        assert lengths[0] == 4 and lengths[-1] == 640
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_single_component(self):
        assert geometric_history_lengths(5, 100, 1) == [5]

    def test_indexer_within_bounds(self):
        history, path, _ = fresh_context()
        geometries = [ComponentGeometry(8, 9, length) for length in (4, 16)]
        indexer = GeometricIndexer(geometries, history, path)
        rng = XorShift64(3)
        for _ in range(300):
            history.push(rng.next_below(2))
            lookup = indexer.lookup(rng.next_u64() & 0xFFFF)
            for index, tag, geometry in zip(
                lookup.indices, lookup.tags, geometries
            ):
                assert 0 <= index < geometry.entries
                assert 0 <= tag < (1 << geometry.tag_bits)

    def test_history_changes_index(self):
        history, path, _ = fresh_context()
        geometries = [ComponentGeometry(10, 12, 32)]
        indexer = GeometricIndexer(geometries, history, path)
        before = indexer.lookup(0x4000).indices[0]
        indices = set()
        rng = XorShift64(5)
        for _ in range(64):
            history.push(rng.next_below(2))
            indices.add(indexer.lookup(0x4000).indices[0])
        assert len(indices | {before}) > 1


class TestBranchTage:
    def test_learns_bias(self):
        history, path, rng = fresh_context()
        bp = TageBranchPredictor(TageConfig(), history, path, rng)
        correct = 0
        for i in range(500):
            pred = bp.predict(0x1000)
            taken = True
            if pred.taken == taken and i > 50:
                correct += 1
            bp.update(pred, taken)
            history.push(1)
            path.push(0x1000)
        assert correct > 430

    def test_learns_period_four_pattern(self):
        history, path, rng = fresh_context()
        bp = TageBranchPredictor(TageConfig(), history, path, rng)
        correct = late = 0
        for i in range(3000):
            taken = (i % 4) == 0
            pred = bp.predict(0x2000)
            if i >= 2000:
                late += 1
                correct += pred.taken == taken
            bp.update(pred, taken)
            history.push(1 if taken else 0)
            if taken:
                path.push(0x2000)
        assert correct / late > 0.95

    def test_random_stream_not_catastrophic(self):
        history, path, rng = fresh_context()
        bp = TageBranchPredictor(TageConfig(), history, path, rng)
        data = XorShift64(99)
        correct = 0
        for _ in range(2000):
            taken = data.chance(0.5)
            pred = bp.predict(0x3000)
            correct += pred.taken == taken
            bp.update(pred, taken)
            history.push(1 if taken else 0)
        assert 0.35 < correct / 2000 < 0.65

    def test_storage_close_to_table_i(self):
        history, path, rng = fresh_context()
        bp = TageBranchPredictor(TageConfig(), history, path, rng)
        # Table I: ~15K entries total -> tens of KB of state.
        total_entries = (1 << 12) + 12 * (1 << 10)
        assert total_entries == 16384
        assert 20 < bp.storage_report().total_kib < 40


class TestDistancePredictor:
    def make(self, config=None, seed=7):
        history, path, rng = fresh_context(seed)
        predictor = DistancePredictor(
            config or DistancePredictorConfig.realistic(), history, path, rng
        )
        return predictor, history

    def test_storage_matches_paper(self):
        ideal, _ = self.make(DistancePredictorConfig.ideal())
        realistic, _ = self.make(DistancePredictorConfig.realistic())
        assert ideal.storage_report().total_kib == pytest.approx(42.6, abs=0.1)
        assert realistic.storage_report().total_kib == pytest.approx(
            10.1, abs=0.1
        )

    def test_trains_stable_distance_to_confidence(self):
        predictor, _ = self.make()
        pc = 0x1000
        for _ in range(600):
            prediction = predictor.predict(pc)
            predictor.train_from_pairing(prediction, 17)
        prediction = predictor.predict(pc)
        assert prediction.use_pred and prediction.distance == 17

    def test_unstable_distance_never_confident(self):
        predictor, _ = self.make()
        rng = XorShift64(31)
        for _ in range(600):
            prediction = predictor.predict(0x2000)
            predictor.train_from_pairing(prediction, 1 + rng.next_below(100))
        assert not predictor.predict(0x2000).use_pred

    def test_mispredict_resets_confidence(self):
        predictor, _ = self.make()
        for _ in range(600):
            prediction = predictor.predict(0x1000)
            predictor.train_from_pairing(prediction, 9)
        prediction = predictor.predict(0x1000)
        assert prediction.use_pred
        predictor.on_mispredict(prediction)
        assert not predictor.predict(0x1000).use_pred

    def test_no_pair_does_not_train(self):
        predictor, _ = self.make()
        for _ in range(400):
            prediction = predictor.predict(0x3000)
            predictor.train_from_pairing(prediction, None)
        assert predictor.predict(0x3000).distance == NO_DISTANCE

    def test_out_of_range_distance_ignored(self):
        predictor, _ = self.make()
        for _ in range(400):
            prediction = predictor.predict(0x4000)
            predictor.train_from_pairing(prediction, 300)  # > 255
        assert not predictor.predict(0x4000).use_pred

    def test_validation_training_path(self):
        predictor, _ = self.make()
        for _ in range(600):
            prediction = predictor.predict(0x5000)
            predictor.train_from_pairing(prediction, 5)
            if prediction.use_pred:
                break
        # Continue training through the validation mechanism (§IV.B.3).
        for _ in range(100):
            prediction = predictor.predict(0x5000)
            predictor.train_from_validation(prediction, True)
        assert predictor.predict(0x5000).use_pred

    def test_likely_candidate_threshold_below_use_pred(self):
        predictor, _ = self.make()
        seen_likely_before_confident = False
        for _ in range(600):
            prediction = predictor.predict(0x6000)
            if prediction.likely_candidate and not prediction.use_pred:
                seen_likely_before_confident = True
            predictor.train_from_pairing(prediction, 12)
        assert seen_likely_before_confident

    def test_history_correlated_distances(self):
        # Same PC, two distances selected by a history bit: the tagged
        # components must eventually disambiguate.
        config = DistancePredictorConfig.ideal()
        predictor, history = self.make(config)
        correct = total = 0
        for i in range(4000):
            phase = (i // 8) % 2
            history.push(phase)
            prediction = predictor.predict(0x7000)
            observed = 11 if phase else 23
            if prediction.use_pred:
                total += 1
                correct += prediction.distance == observed
            predictor.train_from_pairing(prediction, observed)
        if total > 50:
            assert correct / total > 0.80


class TestDVtage:
    def make(self, seed=11):
        history, path, rng = fresh_context(seed)
        return DVtagePredictor(DVtageConfig(), history, path, rng)

    def test_learns_stride(self):
        predictor = self.make()
        value = 1000
        for _ in range(800):
            prediction = predictor.predict(0x1000)
            predictor.train(prediction, value)
            value = mask64(value + 24)
        prediction = predictor.predict(0x1000)
        assert prediction.predicted()
        assert prediction.value == value

    def test_learns_constant(self):
        predictor = self.make()
        for _ in range(800):
            prediction = predictor.predict(0x2000)
            predictor.train(prediction, 0xCAFE)
        prediction = predictor.predict(0x2000)
        assert prediction.predicted() and prediction.value == 0xCAFE

    def test_random_values_never_confident(self):
        predictor = self.make()
        rng = XorShift64(3)
        for _ in range(800):
            prediction = predictor.predict(0x3000)
            predictor.train(prediction, rng.next_u64())
        assert not predictor.predict(0x3000).predicted()

    def test_inflight_rank_compensation(self):
        # Two unresolved instances of a strided instruction: the second
        # must be predicted last + 2*stride (the BeBoP speculative window).
        predictor = self.make()
        value = 0
        for _ in range(800):
            prediction = predictor.predict(0x4000)
            predictor.train(prediction, value)
            value = mask64(value + 10)
        first = predictor.predict(0x4000)
        second = predictor.predict(0x4000)
        assert second.value == mask64(first.value + 10)
        predictor.train(first, first.value)
        predictor.train(second, second.value)

    def test_release_on_squash(self):
        predictor = self.make()
        value = 0
        for _ in range(800):
            prediction = predictor.predict(0x5000)
            predictor.train(prediction, value)
            value = mask64(value + 10)
        first = predictor.predict(0x5000)
        predictor.release(first)  # squashed
        again = predictor.predict(0x5000)
        assert again.value == first.value

    def test_mispredict_resets(self):
        predictor = self.make()
        for _ in range(800):
            prediction = predictor.predict(0x6000)
            predictor.train(prediction, 5)
        prediction = predictor.predict(0x6000)
        assert prediction.predicted()
        predictor.on_mispredict(prediction)
        predictor.train(prediction, 999)
        assert not predictor.predict(0x6000).predicted()


class TestZeroPredictor:
    def test_always_zero_becomes_confident(self):
        predictor = ZeroPredictor(rng=XorShift64(2))
        for _ in range(600):
            prediction = predictor.predict(0x1000)
            predictor.train(prediction, True)
        assert predictor.predict(0x1000).use_pred

    def test_nonzero_resets(self):
        predictor = ZeroPredictor(rng=XorShift64(2))
        for _ in range(600):
            prediction = predictor.predict(0x2000)
            predictor.train(prediction, True)
        prediction = predictor.predict(0x2000)
        predictor.train(prediction, False)
        assert not predictor.predict(0x2000).use_pred

    def test_intermittent_zero_rarely_confident(self):
        predictor = ZeroPredictor(rng=XorShift64(2))
        data = XorShift64(5)
        confident = 0
        for _ in range(2000):
            prediction = predictor.predict(0x3000)
            confident += prediction.use_pred
            predictor.train(prediction, data.chance(0.5))
        assert confident < 50

    def test_storage(self):
        predictor = ZeroPredictor(log2_entries=12)
        assert predictor.storage_report().total_bits == 4096 * 3


class TestGshareDistance:
    def make(self, seed=17):
        history = GlobalHistory()
        return (
            GshareDistancePredictor(
                GshareDistanceConfig(), history, XorShift64(seed)
            ),
            history,
        )

    def test_trains_stable_distance(self):
        predictor, _ = self.make()
        for _ in range(600):
            prediction = predictor.predict(0x1000)
            predictor.train_from_pairing(prediction, 21)
        prediction = predictor.predict(0x1000)
        assert prediction.use_pred and prediction.distance == 21

    def test_mispredict_resets(self):
        predictor, _ = self.make()
        for _ in range(600):
            prediction = predictor.predict(0x2000)
            predictor.train_from_pairing(prediction, 8)
        prediction = predictor.predict(0x2000)
        assert prediction.use_pred
        predictor.on_mispredict(prediction)
        assert not predictor.predict(0x2000).use_pred

    def test_validation_training(self):
        predictor, _ = self.make()
        for _ in range(600):
            prediction = predictor.predict(0x3000)
            predictor.train_from_pairing(prediction, 4)
            if prediction.likely_candidate:
                break
        for _ in range(200):
            prediction = predictor.predict(0x3000)
            predictor.train_from_validation(prediction, True)
        assert predictor.predict(0x3000).use_pred

    def test_storage_report(self):
        predictor, _ = self.make()
        assert predictor.storage_report().total_bits == 2 * 4096 * 11
