"""Legacy setup shim.

The primary build configuration lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` (and ``python setup.py develop``) work in
offline environments whose setuptools cannot build PEP 660 editable wheels
(no ``wheel`` package available).
"""

from setuptools import setup

setup()
