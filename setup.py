"""Build configuration (classic setuptools).

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so ``pip install
-e .`` works in offline environments whose setuptools cannot build
PEP 660 editable wheels (no ``wheel`` package available).

Installs the unified front door plus two deprecated aliases:

* ``repro``       → ``repro.api.cli`` (sweep / perf / figures / report /
  inspect — see DESIGN.md §10)
* ``repro-sweep`` → deprecated alias of ``python -m repro.harness.sweep``
* ``repro-perf``  → deprecated alias of ``python -m repro.harness.perf``
"""

from setuptools import find_packages, setup

setup(
    name="repro-register-sharing",
    version="1.1.0",  # keep in sync with repro.__version__
    description=(
        "Reproduction of 'Register Sharing for Equality Prediction' "
        "(Perais, Endo, Seznec — MICRO 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.api.cli:main",
            "repro-sweep = repro.api.cli:sweep_alias_main",
            "repro-perf = repro.api.cli:perf_alias_main",
        ],
    },
)
