"""Shared fixtures and window configuration for the figure benches.

Timing benches default to a representative benchmark subset and laptop
windows so `pytest benchmarks/ --benchmark-only` completes in minutes.
Set ``REPRO_FULL=1`` for all 29 benchmarks and ``REPRO_WARMUP`` /
``REPRO_MEASURE`` / ``REPRO_SEEDS`` for higher fidelity.

Every bench builds its runner through :func:`make_runner`, which routes
through the process-wide :class:`~repro.harness.sweep.SweepEngine`: all
benches of one session share the persistent trace store (each functional
trace is interpreted at most once per machine) and the cell memo (cells
appearing in several figures — fig. 4's baseline is also fig. 6's,
fig. 7's and Table I's — are simulated exactly once per session).
"""

import os

import pytest

from repro.harness.runner import ExperimentRunner
from repro.harness.sweep import shared_engine
from repro.workloads.spec2006 import benchmark_names

#: Subset covering every behaviour class the paper discusses: RSEP wins
#: (mcf, hmmer, dealII, omnetpp), VP wins (perlbench, wrf, zeusmp),
#: overlap (libquantum, xalancbmk), zero/ILP (gamess), neutral (gobmk,
#: lbm), FP streaming (bwaves).
REPRESENTATIVE = [
    "perlbench", "mcf", "gobmk", "hmmer", "libquantum", "omnetpp",
    "xalancbmk", "bwaves", "gamess", "zeusmp", "dealII", "lbm", "wrf",
]


def bench_benchmarks() -> list[str]:
    if os.environ.get("REPRO_FULL"):
        return benchmark_names()
    return REPRESENTATIVE


def bench_windows() -> tuple[int, int]:
    warmup = int(os.environ.get("REPRO_WARMUP", "8000"))
    measure = int(os.environ.get("REPRO_MEASURE", "24000"))
    return warmup, measure


def make_runner(benchmarks: list[str] | None = None) -> ExperimentRunner:
    """An :class:`ExperimentRunner` on the session-shared sweep engine."""
    warmup, measure = bench_windows()
    return ExperimentRunner(
        benchmarks=benchmarks or bench_benchmarks(),
        warmup=warmup,
        measure=measure,
        engine=shared_engine(),
    )


@pytest.fixture(scope="session")
def windows():
    return bench_windows()
