"""Shared fixtures and window configuration for the figure benches.

Timing benches default to a representative benchmark subset and laptop
windows so `pytest benchmarks/ --benchmark-only` completes in minutes.
Set ``REPRO_FULL=1`` for all 29 benchmarks and ``REPRO_WARMUP`` /
``REPRO_MEASURE`` / ``REPRO_SEEDS`` for higher fidelity.

The figure benches run through the spec API (:mod:`repro.api.figures`):
:func:`bench_session` is a default :class:`~repro.api.Session`, so all
benches of one pytest session share the process-wide sweep engine — the
persistent trace store (each functional trace is interpreted at most
once per machine) and the cell memo (cells appearing in several figures
— fig. 4's baseline is also fig. 6's, fig. 7's and Table I's — are
simulated exactly once per session).  :func:`make_runner` keeps the
legacy :class:`~repro.harness.runner.ExperimentRunner` path alive for
the ablation studies.
"""

import pytest

from repro.api import Session, WindowSpec
from repro.api import env as api_env
from repro.harness.runner import ExperimentRunner
from repro.harness.sweep import shared_engine
from repro.workloads.spec2006 import benchmark_names, representative_names

#: Re-exported for bench code: the representative subset now lives with
#: the workloads (see repro.workloads.spec2006.REPRESENTATIVE).
REPRESENTATIVE = representative_names()


def bench_benchmarks() -> list[str]:
    if api_env.full_benchmarks_from_env():
        return benchmark_names()
    return representative_names()


def bench_windows() -> tuple[int, int]:
    return api_env.window_from_env(default_measure=24000)


def bench_window_spec() -> WindowSpec:
    warmup, measure = bench_windows()
    return WindowSpec(warmup=warmup, measure=measure)


def bench_session() -> Session:
    """A session on the process-wide shared sweep engine."""
    return Session()


def make_runner(benchmarks: list[str] | None = None) -> ExperimentRunner:
    """An :class:`ExperimentRunner` on the session-shared sweep engine."""
    warmup, measure = bench_windows()
    return ExperimentRunner(
        benchmarks=benchmarks or bench_benchmarks(),
        warmup=warmup,
        measure=measure,
        engine=shared_engine(),
    )


@pytest.fixture(scope="session")
def windows():
    return bench_windows()
