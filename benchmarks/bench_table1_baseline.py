"""Table I: the simulator configuration, plus baseline IPC per benchmark
(the sanity row every evaluation starts from).

Thin shell over :mod:`repro.api.figures`.
"""

from conftest import bench_benchmarks, bench_session, bench_window_spec

from repro.api.figures import run_figure


def run_table1():
    result, text = run_figure(
        "table1",
        session=bench_session(),
        benchmarks=bench_benchmarks(),
        window=bench_window_spec(),
    )
    print(text)
    return result


def test_table1_baseline(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    ipcs = [
        result.outcome(name, "baseline").ipc for name in result.benchmarks
    ]
    # SPEC-like IPC band on a Haswell-class 8-wide core.
    assert all(0.2 < ipc < 8.0 for ipc in ipcs)
    assert min(ipcs) < 1.5  # memory/branch-bound benchmarks exist
    assert max(ipcs) > 2.5  # ILP-rich benchmarks exist
