"""Table I: the simulator configuration, plus baseline IPC per benchmark
(the sanity row every evaluation starts from)."""

from conftest import make_runner

from repro.harness.reporting import Table, harmonic_mean
from repro.pipeline.config import CoreConfig, MechanismConfig


def run_table1():
    config = CoreConfig()
    print("\nTable I — simulator configuration")
    print(f"  fetch/rename/commit width : {config.fetch_width}")
    print(f"  ROB / IQ / LQ / SQ        : {config.rob_entries} / "
          f"{config.iq_entries} / {config.lq_entries} / {config.sq_entries}")
    print(f"  INT / FP physical regs    : {config.int_pregs} / "
          f"{config.fp_pregs}")
    print(f"  min mispredict penalty    : {config.mispredict_penalty}")
    print(f"  L1D/L2/L3 latency         : {config.memory.l1d_latency} / "
          f"{config.memory.l2_latency} / {config.memory.l3_latency}")
    print(f"  STLF latency              : {config.stlf_latency}")

    runner = make_runner()
    runner.run([MechanismConfig.baseline()])
    table = Table(["benchmark", "baseline IPC", "branch MPKI"])
    ipcs = []
    for name in runner.benchmarks:
        outcome = runner.outcome(name, "baseline")
        ipcs.append(outcome.ipc)
        mpki = harmonic_mean(
            [s.branch_mpki for s in outcome.merged_stats if s.branch_mpki]
            or [0.0]
        )
        table.add_row(name, f"{outcome.ipc:.3f}", f"{mpki:.1f}")
    print(table.render())
    return ipcs


def test_table1_baseline(benchmark):
    ipcs = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    # SPEC-like IPC band on a Haswell-class 8-wide core.
    assert all(0.2 < ipc < 8.0 for ipc in ipcs)
    assert min(ipcs) < 1.5  # memory/branch-bound benchmarks exist
    assert max(ipcs) > 2.5  # ILP-rich benchmarks exist
