"""Figure 6: impact of the validation mechanism and of commit sampling.

Five RSEP variants: ideal validation, issue-twice locked to the same FU,
issue-twice to any FU, and issue-twice-any-FU with sampling at start-train
thresholds 15 and 63.
"""

from conftest import make_runner

from repro.core.validation import ValidationMode
from repro.harness.reporting import Table
from repro.pipeline.config import MechanismConfig

VARIANTS = [
    MechanismConfig.baseline(),
    MechanismConfig.rsep_validation(ValidationMode.IDEAL),
    MechanismConfig.rsep_validation(ValidationMode.REISSUE_LOCK_FU),
    MechanismConfig.rsep_validation(ValidationMode.REISSUE_ANY_FU),
    MechanismConfig.rsep_validation(
        ValidationMode.REISSUE_ANY_FU, sampling=True, start_train_threshold=15
    ),
    MechanismConfig.rsep_validation(
        ValidationMode.REISSUE_ANY_FU, sampling=True, start_train_threshold=63
    ),
]


def run_fig6():
    runner = make_runner()
    runner.run(VARIANTS)
    table = Table([
        "benchmark", "ideal%", "lockFU%", "anyFU%", "samp15%", "samp63%",
    ])
    for name in runner.benchmarks:
        table.add_row(
            name,
            *(
                f"{100 * runner.speedup(name, mech.name):+.1f}"
                for mech in VARIANTS[1:]
            ),
        )
    print("\nFigure 6 — validation & sampling impact on RSEP speedup")
    print(table.render())
    return runner


def test_fig6_validation(benchmark):
    runner = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    ideal = VARIANTS[1].name
    lock = VARIANTS[2].name
    any_fu = VARIANTS[3].name
    # §IV.F/Fig. 6: locking validation to the FU of the predicted
    # instruction must never beat the any-FU scheme on load-heavy code,
    # and ideal validation bounds both from above (within noise).
    for name in ("mcf", "hmmer", "dealII"):
        assert runner.speedup(name, any_fu) >= runner.speedup(
            name, lock
        ) - 0.02
        assert runner.speedup(name, ideal) >= runner.speedup(
            name, any_fu
        ) - 0.02
