"""Figure 6: impact of the validation mechanism and of commit sampling.

Five RSEP variants: ideal validation, issue-twice locked to the same FU,
issue-twice to any FU, and issue-twice-any-FU with sampling at start-train
thresholds 15 and 63.  Thin shell over :mod:`repro.api.figures`.
"""

from conftest import bench_benchmarks, bench_session, bench_window_spec

from repro.api.figures import FIG6_VARIANTS as VARIANTS
from repro.api.figures import run_figure


def run_fig6():
    result, text = run_figure(
        "fig6",
        session=bench_session(),
        benchmarks=bench_benchmarks(),
        window=bench_window_spec(),
    )
    print(text)
    return result


def test_fig6_validation(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    ideal = VARIANTS[1].name
    lock = VARIANTS[2].name
    any_fu = VARIANTS[3].name
    # §IV.F/Fig. 6: locking validation to the FU of the predicted
    # instruction must never beat the any-FU scheme on load-heavy code,
    # and ideal validation bounds both from above (within noise).
    for name in ("mcf", "hmmer", "dealII"):
        assert result.speedup(name, any_fu) >= result.speedup(
            name, lock
        ) - 0.02
        assert result.speedup(name, ideal) >= result.speedup(
            name, any_fu
        ) - 0.02
