"""Figure 7: ideal RSEP (42.6KB, large structures, free validation) versus
the realistic 10.1KB configuration (128-entry FIFO history, 24-entry ISRB,
sampling threshold 63, re-issue validation).

Thin shell over :mod:`repro.api.figures` (the formatter also prints the
realistic configuration's storage report).
"""

from conftest import bench_benchmarks, bench_session, bench_window_spec

from repro.api.figures import run_figure


def run_fig7():
    result, text = run_figure(
        "fig7",
        session=bench_session(),
        benchmarks=bench_benchmarks(),
        window=bench_window_spec(),
    )
    print(text)
    return result


def test_fig7_realistic(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    # The realistic configuration keeps part of the ideal speedup on the
    # RSEP-friendly benchmarks and never turns a win into a large loss.
    for name in ("hmmer", "dealII"):
        ideal = result.speedup(name, "rsep")
        realistic = result.speedup(name, "rsep-realistic")
        assert ideal > 0.04
        assert realistic > -0.02
        assert realistic <= ideal + 0.03  # finite structures cannot win big
