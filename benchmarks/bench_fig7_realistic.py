"""Figure 7: ideal RSEP (42.6KB, large structures, free validation) versus
the realistic 10.1KB configuration (128-entry FIFO history, 24-entry ISRB,
sampling threshold 63, re-issue validation)."""

from conftest import make_runner

from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.core.rsep import RsepConfig, RsepUnit
from repro.harness.reporting import Table
from repro.pipeline.config import MechanismConfig


def run_fig7():
    runner = make_runner()
    runner.run([
        MechanismConfig.baseline(),
        MechanismConfig.rsep_ideal(),
        MechanismConfig.rsep_realistic(),
    ])
    table = Table(["benchmark", "ideal%", "realistic%"])
    for name in runner.benchmarks:
        table.add_row(
            name,
            f"{100 * runner.speedup(name, 'rsep'):+.1f}",
            f"{100 * runner.speedup(name, 'rsep-realistic'):+.1f}",
        )
    print("\nFigure 7 — ideal (42.6KB) vs realistic (10.1KB) RSEP")
    print(table.render())

    unit = RsepUnit(
        RsepConfig.realistic(), GlobalHistory(), PathHistory(), XorShift64(1)
    )
    report = unit.storage_report()
    print(f"\nRealistic RSEP storage: {report.total_kib:.2f} KB "
          "(paper: ~10.8KB incl. ISRB)")
    return runner


def test_fig7_realistic(benchmark):
    runner = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    # The realistic configuration keeps part of the ideal speedup on the
    # RSEP-friendly benchmarks and never turns a win into a large loss.
    for name in ("hmmer", "dealII"):
        ideal = runner.speedup(name, "rsep")
        realistic = runner.speedup(name, "rsep-realistic")
        assert ideal > 0.04
        assert realistic > -0.02
        assert realistic <= ideal + 0.03  # finite structures cannot win big
