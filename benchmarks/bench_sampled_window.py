#!/usr/bin/env python
"""Sampled-window bench: fidelity and wall-time of interval sampling.

Compares, on the 13-benchmark representative mix:

* **today's window** — full detail at the default 8k/20k window (the
  wall-time yardstick);
* **the scaled window** — full detail at ``--measure`` (default 200k),
  the fidelity reference;
* **the sampled window** — the same scaled window through the sampled
  subsystem (DESIGN.md §8).

and records per-benchmark IPC error, mix-level (harmonic-mean) error and
the three sweeps' wall times under a ``sampled_window`` section in
``BENCH_perf.json`` (the rest of the file is left untouched).  The
acceptance bar (ISSUE 3): mix IPC within 2% of the full-detail reference
while completing in at most 2× the wall time of today's sweep.

Traces are prebuilt through the shared store before any timing, so all
three sweeps measure simulation alone.

Usage::

    PYTHONPATH=src python benchmarks/bench_sampled_window.py
    PYTHONPATH=src python benchmarks/bench_sampled_window.py --measure 100000
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace
from pathlib import Path

from repro.api import env as api_env
from repro.harness.reporting import format_ipc, harmonic_mean
from repro.pipeline.simulator import _TRACE_SLACK, Simulator
from repro.workloads.spec2006 import representative_names

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_perf.json"

#: The representative mix: every behaviour class the paper discusses.
REPRESENTATIVE = representative_names()


def _mechanisms():
    from repro.api.spec import default_mechanisms

    return list(default_mechanisms())


def _sweep(simulator, benchmarks, mechanisms, warmup, measure, sampling,
           repeats: int = 1):
    """{(benchmark, mechanism): result}, plus the sweep's wall time.

    With ``repeats`` > 1 the whole sweep is timed that many times and
    the best wall is kept — the perf harness's standard robust estimator
    under scheduler noise (results are deterministic across repeats).
    """
    out = {}
    best_wall = None
    for _ in range(max(1, repeats)):
        out = {}
        start = time.perf_counter()
        for benchmark in benchmarks:
            for mechanism in mechanisms:
                out[(benchmark, mechanism.name)] = simulator.run_benchmark(
                    benchmark, mechanism, warmup=warmup, measure=measure,
                    seed=1, sampling=sampling,
                )
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return out, best_wall


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--warmup", type=int, default=8000)
    parser.add_argument("--measure", type=int, default=200_000,
                        help="scaled window (default 200000)")
    parser.add_argument("--today-measure", type=int, default=20_000,
                        help="today's full-detail window (wall yardstick)")
    parser.add_argument("--interval", type=int, default=None)
    parser.add_argument("--detail-ratio", type=float, default=None)
    parser.add_argument("--json", type=Path, default=BENCH_JSON)
    args = parser.parse_args(argv)

    # checkpoints=False: record the conservative cold-warm-up wall (a
    # warm checkpoint store would only flatter repeated runs).
    sampling = replace(
        api_env.sampling_from_env(), enabled=True, checkpoints=False,
    )
    if args.interval is not None:
        sampling = replace(sampling, interval=args.interval)
    if args.detail_ratio is not None:
        sampling = replace(sampling, detail_ratio=args.detail_ratio)

    mechanisms = _mechanisms()
    simulator = Simulator()

    # Prebuild every trace (persisted in the shared store): all timed
    # regions below measure simulation, not interpretation.
    budget = args.warmup + args.measure + _TRACE_SLACK
    build_start = time.perf_counter()
    for benchmark in REPRESENTATIVE:
        simulator.trace_for(benchmark, 1, budget)
    build_wall = time.perf_counter() - build_start

    today, today_wall = _sweep(
        simulator, REPRESENTATIVE, mechanisms,
        args.warmup, args.today_measure, None, repeats=2,
    )
    sampled, sampled_wall = _sweep(
        simulator, REPRESENTATIVE, mechanisms,
        args.warmup, args.measure, sampling, repeats=2,
    )
    full, full_wall = _sweep(
        simulator, REPRESENTATIVE, mechanisms,
        args.warmup, args.measure, None,
    )

    print(f"traces: built/loaded in {build_wall:.1f}s "
          f"(budget {budget} instructions each)")
    print(f"{'benchmark':<12} {'mechanism':<16} {'full IPC':>9} "
          f"{'sampled IPC':>16} {'err':>7}")
    errors = []
    per_benchmark = {}
    for (benchmark, name), reference in full.items():
        estimate = sampled[(benchmark, name)]
        error = (estimate.ipc - reference.ipc) / reference.ipc
        errors.append(abs(error))
        per_benchmark.setdefault(name, {})[benchmark] = {
            "full_ipc": round(reference.ipc, 4),
            "sampled_ipc": round(estimate.ipc, 4),
            "ipc_ci": round(estimate.stats.ipc_ci, 4),
            "error": round(error, 4),
        }
        print(f"{benchmark:<12} {name:<16} {reference.ipc:>9.4f} "
              f"{format_ipc(estimate.stats):>16} {error:>+7.2%}")

    mix_errors = {}
    for mechanism in mechanisms:
        full_mix = harmonic_mean(
            full[(b, mechanism.name)].ipc for b in REPRESENTATIVE
        )
        sampled_mix = harmonic_mean(
            sampled[(b, mechanism.name)].ipc for b in REPRESENTATIVE
        )
        mix_errors[mechanism.name] = (sampled_mix - full_mix) / full_mix
        print(f"mix ({mechanism.name}): full {full_mix:.4f} sampled "
              f"{sampled_mix:.4f} err {mix_errors[mechanism.name]:+.2%}")

    ratio = sampled_wall / today_wall if today_wall else 0.0
    print(f"wall: today's {args.today_measure // 1000}k full-detail sweep "
          f"{today_wall:.1f}s; sampled {args.measure // 1000}k "
          f"{sampled_wall:.1f}s ({ratio:.2f}x); full {args.measure // 1000}k "
          f"{full_wall:.1f}s ({full_wall / sampled_wall:.1f}x the sampled)")

    payload = {}
    if args.json.exists():
        try:
            payload = json.loads(args.json.read_text(encoding="utf-8"))
        except ValueError:
            payload = {}
    payload["sampled_window"] = {
        "warmup": args.warmup,
        "measure": args.measure,
        "today_measure": args.today_measure,
        "sampling": {
            "interval": sampling.interval,
            "detail_ratio": sampling.detail_ratio,
            "detail_warmup": sampling.detail_warmup,
        },
        "mix_error": {
            name: round(value, 4) for name, value in mix_errors.items()
        },
        "max_abs_error": round(max(errors), 4),
        "mean_abs_error": round(sum(errors) / len(errors), 4),
        "today_wall_seconds": round(today_wall, 2),
        "sampled_wall_seconds": round(sampled_wall, 2),
        "full_wall_seconds": round(full_wall, 2),
        "wall_ratio_vs_today": round(ratio, 2),
        "per_benchmark": per_benchmark,
    }
    args.json.write_text(json.dumps(payload, indent=1) + "\n",
                         encoding="utf-8")
    print(f"wrote {args.json}")

    ok = all(abs(v) <= 0.02 for v in mix_errors.values()) and ratio <= 2.0
    print("acceptance: mix error <=2% and wall <=2x -> "
          + ("ok" if ok else "NOT MET"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
