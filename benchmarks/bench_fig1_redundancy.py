"""Figure 1: ratio of committed instructions whose result is zero or
already present in the PRF, per benchmark (load / other split).

Regenerates the paper's first figure from the functional redundancy
analysis.  Runs over all 29 benchmarks (it needs no timing model).
Thin shell over :func:`repro.api.figures.run_fig1`.
"""

from repro.api.figures import run_fig1


def run_fig1_bench():
    profiles, text = run_fig1()
    print(text)
    return profiles


def test_fig1_redundancy(benchmark):
    profiles = benchmark.pedantic(run_fig1_bench, rounds=1, iterations=1)
    by_name = {p.benchmark: p for p in profiles}
    # Paper shapes: zeusmp/cactusADM are the zero-heavy benchmarks; many
    # benchmarks show >= 5% redundancy potential; libquantum is
    # reuse-rich.
    assert by_name["zeusmp"].zero_fraction > by_name["gobmk"].zero_fraction
    assert by_name["cactusADM"].zero_fraction > 0.05
    assert by_name["libquantum"].in_prf_fraction > 0.10
    rich = sum(
        1 for p in profiles if p.total_redundant_fraction > 0.05
    )
    assert rich >= 15  # "in most cases, the ratio is around or greater than 5%"
