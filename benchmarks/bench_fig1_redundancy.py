"""Figure 1: ratio of committed instructions whose result is zero or
already present in the PRF, per benchmark (load / other split).

Regenerates the paper's first figure from the functional redundancy
analysis.  Runs over all 29 benchmarks (it needs no timing model).
"""

from repro.harness.redundancy import analyze_benchmark
from repro.harness.reporting import Table
from repro.workloads.spec2006 import benchmark_names


def run_fig1():
    table = Table([
        "benchmark", "zero(ld)%", "zero(other)%",
        "inPRF(ld)%", "inPRF(other)%", "total%",
    ])
    profiles = []
    for name in benchmark_names():
        profile = analyze_benchmark(name, instructions=20000)
        profiles.append(profile)
        table.add_row(
            name,
            f"{100 * profile.fraction(profile.zero_load):.1f}",
            f"{100 * profile.fraction(profile.zero_other):.1f}",
            f"{100 * profile.fraction(profile.in_prf_load):.1f}",
            f"{100 * profile.fraction(profile.in_prf_other):.1f}",
            f"{100 * profile.total_redundant_fraction:.1f}",
        )
    print("\nFigure 1 — commit-time value redundancy")
    print(table.render())
    return profiles


def test_fig1_redundancy(benchmark):
    profiles = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    by_name = {p.benchmark: p for p in profiles}
    # Paper shapes: zeusmp/cactusADM are the zero-heavy benchmarks; many
    # benchmarks show >= 5% redundancy potential; libquantum is
    # reuse-rich.
    assert by_name["zeusmp"].zero_fraction > by_name["gobmk"].zero_fraction
    assert by_name["cactusADM"].zero_fraction > 0.05
    assert by_name["libquantum"].in_prf_fraction > 0.10
    rich = sum(
        1 for p in profiles if p.total_redundant_fraction > 0.05
    )
    assert rich >= 15  # "in most cases, the ratio is around or greater than 5%"
