"""Figure 5: percentage of committed instructions covered by each
mechanism — RSEP alone, then VP on top of RSEP."""

from conftest import make_runner

from repro.harness.reporting import Table
from repro.pipeline.config import MechanismConfig


def run_fig5():
    runner = make_runner()
    runner.run([MechanismConfig.rsep_ideal(), MechanismConfig.rsep_plus_vp()])
    table = Table([
        "benchmark", "config", "idiom%", "move%", "zero%", "dist%",
        "dist(ld)%", "vpred%", "vpred(ld)%",
    ])
    for name in runner.benchmarks:
        for mechanism in ("rsep", "rsep+vpred"):
            outcome = runner.outcome(name, mechanism)
            table.add_row(
                name,
                mechanism,
                f"{100 * outcome.stat_fraction('zero_idiom_elim'):.1f}",
                f"{100 * outcome.stat_fraction('move_elim'):.1f}",
                f"{100 * outcome.stat_fraction('zero_pred'):.1f}",
                f"{100 * outcome.stat_fraction('dist_pred'):.1f}",
                f"{100 * outcome.stat_fraction('dist_pred_load'):.1f}",
                f"{100 * outcome.stat_fraction('value_pred'):.1f}",
                f"{100 * outcome.stat_fraction('value_pred_load'):.1f}",
            )
    print("\nFigure 5 — committed-instruction coverage per mechanism")
    print(table.render())
    return runner


def test_fig5_coverage(benchmark):
    runner = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    # mcf: "almost only loads are predicted".
    mcf = runner.outcome("mcf", "rsep")
    if mcf.stat_sum("dist_pred") > 100:
        assert (
            mcf.stat_sum("dist_pred_load")
            > 0.6 * mcf.stat_sum("dist_pred")
        )
    # dealII: mostly non-load distance predictions.
    dealii = runner.outcome("dealII", "rsep")
    assert (
        dealii.stat_sum("dist_pred") - dealii.stat_sum("dist_pred_load")
        > dealii.stat_sum("dist_pred_load")
    )
    # VP on top of RSEP adds coverage without erasing RSEP's.
    combined = runner.outcome("libquantum", "rsep+vpred")
    assert combined.stat_fraction("value_pred") > 0.05
    assert combined.stat_fraction("dist_pred") > 0.02
