"""Figure 5: percentage of committed instructions covered by each
mechanism — RSEP alone, then VP on top of RSEP.

Thin shell over :mod:`repro.api.figures` (spec + formatter live there).
"""

from conftest import bench_benchmarks, bench_session, bench_window_spec

from repro.api.figures import run_figure


def run_fig5():
    result, text = run_figure(
        "fig5",
        session=bench_session(),
        benchmarks=bench_benchmarks(),
        window=bench_window_spec(),
    )
    print(text)
    return result


def test_fig5_coverage(benchmark):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    # mcf: "almost only loads are predicted".
    mcf = result.outcome("mcf", "rsep")
    if mcf.stat_sum("dist_pred") > 100:
        assert (
            mcf.stat_sum("dist_pred_load")
            > 0.6 * mcf.stat_sum("dist_pred")
        )
    # dealII: mostly non-load distance predictions.
    dealii = result.outcome("dealII", "rsep")
    assert (
        dealii.stat_sum("dist_pred") - dealii.stat_sum("dist_pred_load")
        > dealii.stat_sum("dist_pred_load")
    )
    # VP on top of RSEP adds coverage without erasing RSEP's.
    combined = result.outcome("libquantum", "rsep+vpred")
    assert combined.stat_fraction("value_pred") > 0.05
    assert combined.stat_fraction("dist_pred") > 0.02
