#!/usr/bin/env python
"""Simulator-throughput benchmark: simulated KIPS, tracked in BENCH_perf.json.

Full mode (default) measures baseline and rsep-realistic over the default
window on the representative benchmark mix and writes ``BENCH_perf.json``
(next to this script's repo root) recording per-cell KIPS, the aggregate
per mechanism, the pinned seed-implementation reference, and a smoke
reference for CI.

``--smoke`` runs a single quick cell and exits non-zero if throughput
regressed more than 30% against the smoke reference recorded in the
committed ``BENCH_perf.json`` — the CI guard for the perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_throughput.py
    PYTHONPATH=src python benchmarks/bench_perf_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from repro.harness.perf import (
    DEFAULT_BENCHMARKS,
    SMOKE_TOLERANCE,
    measure_throughput,
    render_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_perf.json"

#: Label of the trajectory entry this working tree records.  Bumped once
#: per perf-relevant PR; override with REPRO_PERF_LABEL for ad-hoc runs.
CURRENT_LABEL = os.environ.get("REPRO_PERF_LABEL", "PR 10")

#: Aggregate simulated KIPS of the seed implementation (commit 1b7db02),
#: measured with this same protocol (default window, best-of-3 pipeline
#: wall time, traces untimed) on the reference container.  These anchor
#: the speedup-vs-seed figures recorded in BENCH_perf.json.
SEED_REFERENCE_KIPS = {
    "baseline": 31.83,
    "rsep-realistic": 20.95,
}

#: Pinned per-PR trajectory anchors (same protocol), so the history
#: survives even if BENCH_perf.json is regenerated from scratch.
PINNED_TRAJECTORY = [
    {
        "label": "seed",
        "aggregate_kips": dict(SEED_REFERENCE_KIPS),
        "speedup_vs_seed": {"baseline": 1.0, "rsep-realistic": 1.0},
    },
    {
        "label": "PR 1",
        "aggregate_kips": {"baseline": 76.48, "rsep-realistic": 48.62},
        "speedup_vs_seed": {"baseline": 2.4, "rsep-realistic": 2.32},
    },
    {
        "label": "PR 2",
        "aggregate_kips": {"baseline": 87.46, "rsep-realistic": 53.37},
        "speedup_vs_seed": {"baseline": 2.75, "rsep-realistic": 2.55},
    },
    {
        "label": "PR 3",
        "aggregate_kips": {"baseline": 91.07, "rsep-realistic": 56.55},
        "speedup_vs_seed": {"baseline": 2.86, "rsep-realistic": 2.7},
    },
    {
        "label": "PR 4",
        "aggregate_kips": {"baseline": 94.16, "rsep-realistic": 58.58},
        "speedup_vs_seed": {"baseline": 2.96, "rsep-realistic": 2.8},
    },
    {
        "label": "PR 5",
        "aggregate_kips": {"baseline": 91.08, "rsep-realistic": 56.1},
        "speedup_vs_seed": {"baseline": 2.86, "rsep-realistic": 2.68},
    },
    # PR 6 re-measured on a slower host generation than PR 1-5 (the
    # trajectory is same-host-comparable per entry, not across hosts).
    {
        "label": "PR 6",
        "aggregate_kips": {"baseline": 77.44, "rsep-realistic": 46.02},
        "speedup_vs_seed": {"baseline": 2.43, "rsep-realistic": 2.2},
    },
    {
        "label": "PR 7",
        "aggregate_kips": {"baseline": 96.82, "rsep-realistic": 58.01},
        "speedup_vs_seed": {"baseline": 3.04, "rsep-realistic": 2.77},
    },
    {
        "label": "PR 8",
        "aggregate_kips": {"baseline": 103.41, "rsep-realistic": 57.91},
        "speedup_vs_seed": {"baseline": 3.25, "rsep-realistic": 2.76},
    },
]
SEED_REFERENCE_PER_BENCHMARK = {
    "baseline": {
        "mcf": 34.73, "astar": 12.21, "omnetpp": 38.66, "bzip2": 52.16,
        "xalancbmk": 59.24, "gamess": 51.38, "lbm": 23.18, "hmmer": 61.86,
    },
    "rsep-realistic": {
        "mcf": 22.52, "astar": 9.93, "omnetpp": 24.35, "bzip2": 30.06,
        "xalancbmk": 30.83, "gamess": 28.17, "lbm": 16.79, "hmmer": 28.52,
    },
}

SMOKE_BENCHMARK = "mcf"
SMOKE_WARMUP = 1000
SMOKE_MEASURE = 4000


def _mechanisms():
    from repro.api.spec import default_mechanisms

    return list(default_mechanisms())


def _merge_trajectory(existing: list | None, entry: dict) -> list:
    """Pinned anchors + prior entries, with *entry* replacing its label.

    The trajectory is append-only across PRs: each full run updates (or
    adds) the entry for ``CURRENT_LABEL`` and leaves every other PR's
    numbers untouched, so BENCH_perf.json keeps the whole history instead
    of only the latest aggregates.
    """
    merged: dict[str, dict] = {
        pinned["label"]: dict(pinned) for pinned in PINNED_TRAJECTORY
    }
    for previous in existing or []:
        label = previous.get("label")
        if label and label not in merged:
            merged[label] = previous
    merged[entry["label"]] = entry
    return list(merged.values())


def run_full(repeats: int, json_path: Path) -> int:
    report = measure_throughput(
        benchmarks=DEFAULT_BENCHMARKS,
        mechanisms=_mechanisms(),
        repeats=repeats,
    )
    print(render_report(report))

    smoke = measure_throughput(
        benchmarks=(SMOKE_BENCHMARK,),
        mechanisms=_mechanisms(),
        warmup=SMOKE_WARMUP,
        measure=SMOKE_MEASURE,
        repeats=repeats,
    )

    existing = None
    if json_path.exists():
        try:
            existing = json.loads(json_path.read_text(encoding="utf-8"))
        except ValueError:
            existing = None

    payload = report.to_dict()
    # Preserve sections other benches own (e.g. bench_sampled_window's
    # "sampled_window"): this bench only replaces its own keys.
    for key, value in (existing or {}).items():
        if key not in payload and key != "trajectory":
            payload[key] = value
    payload["seed_reference_kips"] = SEED_REFERENCE_KIPS
    payload["seed_reference_per_benchmark"] = SEED_REFERENCE_PER_BENCHMARK
    payload["speedup_vs_seed"] = {
        name: round(report.aggregate_kips[name] / seed_kips, 2)
        for name, seed_kips in SEED_REFERENCE_KIPS.items()
        if name in report.aggregate_kips
    }
    payload["trajectory"] = _merge_trajectory(
        (existing or {}).get("trajectory"),
        {
            "label": CURRENT_LABEL,
            "warmup": report.warmup,
            "measure": report.measure,
            "repeats": report.repeats,
            "aggregate_kips": {
                name: round(value, 2)
                for name, value in report.aggregate_kips.items()
            },
            "per_benchmark_kips": {
                mechanism.name: {
                    sample.benchmark: sample.kips
                    for sample in report.samples
                    if sample.mechanism == mechanism.name
                }
                for mechanism in _mechanisms()
            },
            "speedup_vs_seed": dict(payload["speedup_vs_seed"]),
        },
    )
    payload["smoke"] = {
        "benchmark": SMOKE_BENCHMARK,
        "warmup": SMOKE_WARMUP,
        "measure": SMOKE_MEASURE,
        "tolerance": SMOKE_TOLERANCE,
        "aggregate_kips": {
            name: round(value, 2)
            for name, value in smoke.aggregate_kips.items()
        },
    }
    json_path.write_text(json.dumps(payload, indent=1) + "\n",
                         encoding="utf-8")
    print(f"\nspeedup vs seed: {payload['speedup_vs_seed']}")
    print("trajectory: " + " -> ".join(
        f"{entry['label']} {entry['aggregate_kips']}"
        for entry in payload["trajectory"]
    ))
    print(f"wrote {json_path}")
    return 0


def run_smoke(repeats: int, json_path: Path) -> int:
    """The CI regression gate; shared with ``repro perf --smoke``."""
    from repro.harness.perf import throughput_smoke

    return throughput_smoke(json_path, repeats=repeats)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick run; fail on >30%% KIPS regression "
                        "against BENCH_perf.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", type=Path, default=BENCH_JSON,
                        help=f"report path (default {BENCH_JSON.name})")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args.repeats, args.json)
    return run_full(args.repeats, args.json)


if __name__ == "__main__":
    raise SystemExit(main())
