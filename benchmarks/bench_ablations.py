"""Ablation benches for the design-space studies in the paper's text:

* §VI.A.2 — FIFO history depth (32 / 128 / effectively unbounded);
* §VI.A.2 — FIFO history vs the DDT;
* §VI.A.3 — ISRB size;
* §IV.A   — hash width (false-positive rate of the fold);
* §IV.C   — TAGE-like vs gshare-like distance predictor;
* §IV.D.2 — commit-group comparator provisioning.
"""

import dataclasses

from conftest import bench_windows, make_runner

from repro.common.rng import XorShift64
from repro.core.hashing import hash_collision_rate
from repro.core.rsep import RsepConfig
from repro.harness.reporting import Table
from repro.harness.sweep import shared_engine
from repro.pipeline.config import MechanismConfig
from repro.pipeline.core import Pipeline
from repro.pipeline.simulator import _TRACE_SLACK

#: Benchmarks with deep and shallow pair distances respectively.
DEPTH_BENCHMARKS = ["hmmer", "xalancbmk", "mcf", "dealII", "omnetpp"]


def _rsep_variant(name, **overrides):
    rsep = dataclasses.replace(RsepConfig.ideal(), **overrides)
    return dataclasses.replace(
        MechanismConfig.rsep_ideal(), name=name, rsep=rsep
    )


def run_history_depth():
    runner = make_runner(benchmarks=DEPTH_BENCHMARKS)
    variants = [
        MechanismConfig.baseline(),
        _rsep_variant("hist32", history_entries=32),
        _rsep_variant("hist128", history_entries=128),
        _rsep_variant("hist4096", history_entries=4096),
    ]
    runner.run(variants)
    table = Table(["benchmark", "32-deep%", "128-deep%", "4096-deep%"])
    for name in runner.benchmarks:
        table.add_row(
            name,
            *(
                f"{100 * runner.speedup(name, v.name):+.1f}"
                for v in variants[1:]
            ),
        )
    print("\n§VI.A.2 — FIFO history depth")
    print(table.render())
    return runner


def test_history_depth(benchmark):
    runner = benchmark.pedantic(run_history_depth, rounds=1, iterations=1)
    # hmmer's pair distance exceeds 32: the deep history must recover
    # clearly more speedup than the 32-entry one (§VI.A.2).
    assert runner.speedup("hmmer", "hist128") > runner.speedup(
        "hmmer", "hist32"
    ) + 0.02
    # 128 entries suffice: going (effectively) unbounded adds little.
    assert runner.speedup("hmmer", "hist4096") < runner.speedup(
        "hmmer", "hist128"
    ) + 0.04


def run_ddt_vs_fifo():
    runner = make_runner(benchmarks=["mcf", "hmmer", "dealII", "libquantum"])
    variants = [
        MechanismConfig.baseline(),
        _rsep_variant("fifo", pairing="fifo", history_entries=128),
        _rsep_variant("ddt", pairing="ddt"),
    ]
    runner.run(variants)
    table = Table(["benchmark", "fifo%", "ddt%"])
    for name in runner.benchmarks:
        table.add_row(
            name,
            f"{100 * runner.speedup(name, 'fifo'):+.1f}",
            f"{100 * runner.speedup(name, 'ddt'):+.1f}",
        )
    print("\n§VI.A.2 — FIFO history vs DDT pairing")
    print(table.render())
    return runner


def test_ddt_vs_fifo(benchmark):
    runner = benchmark.pedantic(run_ddt_vs_fifo, rounds=1, iterations=1)
    # The FIFO (preferred-distance matching) is never clearly worse than
    # the noise-prone DDT on the RSEP-friendly benchmarks (§VI.A.2).
    for name in ("hmmer", "dealII"):
        assert runner.speedup(name, "fifo") >= runner.speedup(
            name, "ddt"
        ) - 0.02


def run_isrb_sweep():
    runner = make_runner(benchmarks=["mcf", "dealII", "hmmer"])
    variants = [MechanismConfig.baseline()] + [
        _rsep_variant(f"isrb{entries}", isrb_entries=entries)
        for entries in (4, 12, 24, 64)
    ]
    runner.run(variants)
    table = Table(["benchmark", "isrb4%", "isrb12%", "isrb24%", "isrb64%"])
    for name in runner.benchmarks:
        table.add_row(
            name,
            *(
                f"{100 * runner.speedup(name, v.name):+.1f}"
                for v in variants[1:]
            ),
        )
    print("\n§VI.A.3 — ISRB size")
    print(table.render())
    return runner


def test_isrb_sweep(benchmark):
    runner = benchmark.pedantic(run_isrb_sweep, rounds=1, iterations=1)
    # 24 entries are enough: 64 adds (almost) nothing (§VI.A.3).
    for name in ("dealII", "hmmer"):
        assert runner.speedup(name, "isrb64") < runner.speedup(
            name, "isrb24"
        ) + 0.03


def run_hash_width():
    rng = XorShift64(99)
    values = [rng.next_u64() for _ in range(200)]
    table = Table(["hash bits", "false-positive rate"])
    rates = {}
    for bits in (8, 10, 12, 14, 16):
        rates[bits] = hash_collision_rate(values, bits)
        table.add_row(str(bits), f"{rates[bits]:.5f}")
    print("\n§IV.A — fold-hash width vs false-positive rate")
    print(table.render())
    return rates


def test_hash_width(benchmark):
    rates = benchmark.pedantic(run_hash_width, rounds=1, iterations=1)
    assert rates[14] <= rates[8]
    assert rates[14] < 0.001


def run_predictor_kind():
    runner = make_runner(benchmarks=["mcf", "hmmer", "dealII", "omnetpp"])
    variants = [
        MechanismConfig.baseline(),
        _rsep_variant("tage-dist", predictor_kind="tage"),
        _rsep_variant("gshare-dist", predictor_kind="gshare"),
    ]
    runner.run(variants)
    table = Table(["benchmark", "tage%", "gshare%"])
    for name in runner.benchmarks:
        table.add_row(
            name,
            f"{100 * runner.speedup(name, 'tage-dist'):+.1f}",
            f"{100 * runner.speedup(name, 'gshare-dist'):+.1f}",
        )
    print("\n§IV.C — TAGE-like vs gshare-like distance predictor")
    print(table.render())
    return runner


def test_predictor_kind(benchmark):
    runner = benchmark.pedantic(run_predictor_kind, rounds=1, iterations=1)
    # [11]: the TAGE-like predictor outperforms (or at least matches) the
    # gshare-like one.
    total_tage = sum(
        runner.speedup(n, "tage-dist") for n in runner.benchmarks
    )
    total_gshare = sum(
        runner.speedup(n, "gshare-dist") for n in runner.benchmarks
    )
    assert total_tage >= total_gshare - 0.02


def run_comparator_study():
    warmup, measure = bench_windows()
    groups = {}
    # Traces via the shared engine's simulator: served by the persistent
    # store / in-memory cache instead of a private re-interpretation,
    # sized exactly like Simulator.run_benchmark sizes them.
    simulator = shared_engine().simulator
    for name in ("lbm", "gamess", "gobmk", "mcf"):
        trace = simulator.trace_for(name, 1, warmup + measure + _TRACE_SLACK)
        pipeline = Pipeline(
            trace, mechanisms=MechanismConfig.rsep_ideal(), seed=1
        )
        pipeline.run(measure, warmup=warmup)
        groups[name] = pipeline.rsep.pairing
    table = Table(["benchmark", "<=4 comparators", "<=6 comparators"])
    for name, pairing in groups.items():
        table.add_row(
            name,
            f"{100 * pairing.comparator_sufficiency(4):.1f}%",
            f"{100 * pairing.comparator_sufficiency(6):.1f}%",
        )
    print("\n§IV.D.2 — commit-group comparator sufficiency")
    print(table.render())
    return groups


def test_comparator_study(benchmark):
    groups = benchmark.pedantic(run_comparator_study, rounds=1, iterations=1)
    # §IV.D.2 shape: lbm and gamess stress full-width commit groups more
    # than branchy/memory-bound benchmarks do.  (Absolute percentages are
    # burstier here than in the paper: in-order commit drains in
    # full-width bursts after a long-latency head instruction.)
    for pairing in groups.values():
        assert pairing.comparator_sufficiency(8) == 1.0
    assert groups["lbm"].comparator_sufficiency(4) <= groups[
        "gobmk"
    ].comparator_sufficiency(4) + 0.05
