"""Figure 4: speedup over baseline for zero prediction, move elimination,
RSEP (ideal), value prediction, and RSEP + VP.

Thin shell: the mechanisms, spec and formatter live in
:mod:`repro.api.figures`; this bench only supplies the bench-scale
window/benchmark overlay and the acceptance assertions.
"""

from conftest import bench_benchmarks, bench_session, bench_window_spec

from repro.api.figures import FIG4_MECHANISMS as MECHANISMS  # noqa: F401
from repro.api.figures import run_figure


def run_fig4():
    result, text = run_figure(
        "fig4",
        session=bench_session(),
        benchmarks=bench_benchmarks(),
        window=bench_window_spec(),
    )
    print(text)
    return result


def test_fig4_speedup(benchmark):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    # Headline shapes: RSEP clearly helps its flagship benchmarks...
    assert result.speedup("hmmer", "rsep") > 0.04
    assert result.speedup("dealII", "rsep") > 0.04
    assert result.speedup("omnetpp", "rsep") > -0.01
    # ...while VP leads elsewhere and they do not fully overlap.
    assert result.speedup("perlbench", "vpred") > 0.01
    assert result.speedup("dealII", "rsep") > result.speedup(
        "dealII", "vpred"
    )
    # The combination never collapses far below the best single mechanism.
    for name in ("hmmer", "dealII", "libquantum"):
        best = max(
            result.speedup(name, "rsep"), result.speedup(name, "vpred")
        )
        assert result.speedup(name, "rsep+vpred") > best - 0.06
