"""Figure 4: speedup over baseline for zero prediction, move elimination,
RSEP (ideal), value prediction, and RSEP + VP."""

from conftest import make_runner

from repro.harness.reporting import Table
from repro.pipeline.config import MechanismConfig

MECHANISMS = [
    MechanismConfig.baseline(),
    MechanismConfig.zero_prediction(),
    MechanismConfig.move_elimination(),
    MechanismConfig.rsep_ideal(),
    MechanismConfig.value_prediction(),
    MechanismConfig.rsep_plus_vp(),
]


def run_fig4():
    runner = make_runner()
    runner.run(MECHANISMS)
    table = Table([
        "benchmark", "base IPC", "zero%", "move%", "rsep%", "vpred%",
        "rsep+vp%",
    ])
    for name in runner.benchmarks:
        table.add_row(
            name,
            f"{runner.outcome(name, 'baseline').ipc:.3f}",
            *(
                f"{100 * runner.speedup(name, mech.name):+.1f}"
                for mech in MECHANISMS[1:]
            ),
        )
    print("\nFigure 4 — speedup over baseline by mechanism")
    print(table.render())
    return runner


def test_fig4_speedup(benchmark):
    runner = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    # Headline shapes: RSEP clearly helps its flagship benchmarks...
    assert runner.speedup("hmmer", "rsep") > 0.04
    assert runner.speedup("dealII", "rsep") > 0.04
    assert runner.speedup("omnetpp", "rsep") > -0.01
    # ...while VP leads elsewhere and they do not fully overlap.
    assert runner.speedup("perlbench", "vpred") > 0.01
    assert runner.speedup("dealII", "rsep") > runner.speedup(
        "dealII", "vpred"
    )
    # The combination never collapses far below the best single mechanism.
    for name in ("hmmer", "dealII", "libquantum"):
        best = max(
            runner.speedup(name, "rsep"), runner.speedup(name, "vpred")
        )
        assert runner.speedup(name, "rsep+vpred") > best - 0.06
